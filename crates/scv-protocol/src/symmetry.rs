//! Protocol symmetry: permutation groups over processor, block, and value
//! identities.
//!
//! Most protocols in the zoo treat processor numbers, block numbers, and
//! data values interchangeably: renaming them maps runs to runs and
//! preserves sequential consistency verbatim. A [`Symmetry`]
//! implementation declares which dimensions are interchangeable
//! ([`Symmetry::symmetry_dims`]) and how one renaming acts on a protocol
//! state ([`Symmetry::permute_state`]) and on storage-location IDs
//! ([`Symmetry::permute_loc`]). The model checker then explores one
//! representative per orbit of the symmetry group — the *quotient* of the
//! product space — which shrinks the reachable state count by up to the
//! group order `p!·b!·v!`.
//!
//! Soundness rests on *equivariance*: for every renaming `g` in the
//! declared group, `g` must map the successor set of `s` onto the
//! successor set of `g·s` (with actions and tracking labels renamed
//! consistently), and must fix the initial state. Fault-injected protocol
//! variants routinely break this in one dimension — buggy MSI spares the
//! *highest-numbered* sharer, so renaming processors does not commute with
//! its transition relation — and must exclude that dimension (the buggy
//! variants here keep block/value symmetry only). Declaring a dimension
//! that is not actually equivariant makes the quotient search unsound.

use crate::api::{LocId, Protocol};
use crate::directory::DirEntry;
use crate::{
    DirectoryProtocol, Fig4Protocol, LazyCaching, MesiProtocol, MsiProtocol, SerialMemory,
    StoreBufferTso,
};
use scv_types::{SortKeyBuf, SymDim, SymDims, SymPerm};

/// A protocol with a declared symmetry group.
///
/// Every method has a default that declares *no* symmetry, so any
/// [`Protocol`] can opt in with an empty `impl Symmetry for P {}` and
/// still be verified (the quotient layer degenerates to the identity).
/// A protocol that overrides [`Symmetry::symmetry_dims`] MUST also
/// override the other three methods consistently:
///
/// * [`Symmetry::permute_state`] must be a group action of the declared
///   group under which the transition relation is equivariant;
/// * [`Symmetry::permute_loc`] must rename storage locations the same way
///   the tracking labels of renamed transitions are renamed;
/// * [`Symmetry::encode_state`] must be *injective* on reachable states
///   (two different states must never encode equal) — the encoding is the
///   orbit-minimum comparison key, so a collision would merge
///   inequivalent product states and could mask a violation.
pub trait Symmetry: Protocol {
    /// Which identity dimensions the transition relation is equivariant
    /// in. Defaults to none (no reduction).
    fn symmetry_dims(&self) -> SymDims {
        SymDims::NONE
    }

    /// The renamed state `g·s`.
    fn permute_state(&self, s: &Self::State, perm: &SymPerm) -> Self::State {
        let _ = perm;
        s.clone()
    }

    /// The renamed storage-location ID.
    fn permute_loc(&self, loc: LocId, perm: &SymPerm) -> LocId {
        let _ = perm;
        loc
    }

    /// Append an injective encoding of `s` to `out`.
    fn encode_state(&self, s: &Self::State, out: &mut Vec<u64>) {
        let _ = (s, out);
    }

    /// Per-element composite sort keys enabling the sort-based
    /// canonicalization fast path for one symmetric dimension.
    ///
    /// A dimension acts *positionally* on a prefix of
    /// [`Symmetry::encode_state`]'s output when permuting its elements
    /// only moves whole word groups around (and renames nothing inside
    /// any word of the prefix). For such a dimension, this method fills
    /// `keys` with one key per element — the words that element
    /// contributes to the prefix, in position order — and returns
    /// `Some(covered)`, the prefix length in words. The contract is:
    ///
    /// * every word in `[0..covered)` either belongs to exactly one
    ///   element's key or is invariant under all perms of the dimension;
    /// * all keys have the same length, and the prefix decomposes into
    ///   *segments* (contiguous word ranges) such that within each
    ///   segment the elements' words appear in ascending element order
    ///   with a uniform shape (whole chunks or strided columns);
    /// * words at positions `>= covered` may depend on the dimension
    ///   arbitrarily (e.g. element numbers stored *inside* words).
    ///
    /// Under that contract, stably sorting elements by key yields the
    /// lexicographically minimal arrangement of the prefix over the
    /// dimension's permutations, and the tied runs of the sort are
    /// exactly the residual subgroup that can still move the words at
    /// `>= covered` (enumerated by `scv_types::ResidualEnum`). Returning
    /// `None` (the default) declares the dimension content-acting — the
    /// canonicalizer falls back to enumerating its perms outright. The
    /// answer must not depend on `s` (only on the protocol and `dim`).
    fn sort_keys(&self, s: &Self::State, dim: SymDim, keys: &mut SortKeyBuf) -> Option<usize> {
        let _ = (s, dim, keys);
        None
    }
}

/// Forward and inverse location maps (`1..=L`, index 0 unused) induced by
/// `perm` through [`Symmetry::permute_loc`].
pub fn location_maps<P: Symmetry + ?Sized>(p: &P, perm: &SymPerm) -> (Vec<u32>, Vec<u32>) {
    let mut fwd = Vec::new();
    let mut inv = Vec::new();
    location_maps_into(p, perm, &mut fwd, &mut inv);
    (fwd, inv)
}

/// [`location_maps`] into caller-owned buffers — the canonicalization
/// fast path rebuilds the maps once per orbit candidate and must not
/// allocate per candidate.
pub fn location_maps_into<P: Symmetry + ?Sized>(
    p: &P,
    perm: &SymPerm,
    fwd: &mut Vec<u32>,
    inv: &mut Vec<u32>,
) {
    let l = p.locations() as usize;
    fwd.clear();
    fwd.resize(l + 1, 0);
    inv.clear();
    inv.resize(l + 1, 0);
    for old in 1..=l as u32 {
        let new = p.permute_loc(old, perm);
        debug_assert!(
            (1..=l as u32).contains(&new) && inv[new as usize] == 0,
            "permute_loc must be a permutation of 1..=L"
        );
        fwd[old as usize] = new;
        inv[new as usize] = old;
    }
}

/// The lexicographically minimal [`Symmetry::encode_state`] encoding of
/// `s` over `group` — the orbit-canonical protocol-state key. Two states
/// in the same orbit of `group` canonicalize identically.
pub fn canonical_state_encoding<P: Symmetry>(p: &P, s: &P::State, group: &[SymPerm]) -> Vec<u64> {
    let mut best = Vec::new();
    p.encode_state(s, &mut best);
    let mut scratch = Vec::with_capacity(best.len());
    for g in group {
        if g.is_identity() {
            continue;
        }
        scratch.clear();
        p.encode_state(&p.permute_state(s, g), &mut scratch);
        if scratch < best {
            std::mem::swap(&mut best, &mut scratch);
        }
    }
    best
}

// ----- helpers -------------------------------------------------------------

/// Rename a processor-major `(p × b)` table, renaming cell contents with
/// `f`.
fn permute_pb_table<T: Copy>(
    src: &[T],
    p: usize,
    b: usize,
    perm: &SymPerm,
    mut f: impl FnMut(T) -> T,
) -> Vec<T> {
    let mut out = src.to_vec();
    for pi in 0..p {
        for bi in 0..b {
            out[perm.proc_idx(pi) * b + perm.block_idx(bi)] = f(src[pi * b + bi]);
        }
    }
    out
}

/// Rename a per-block array, renaming contents with `f`.
fn permute_blocks<T: Copy>(src: &[T], perm: &SymPerm, mut f: impl FnMut(T) -> T) -> Vec<T> {
    let mut out = src.to_vec();
    for (bi, &x) in src.iter().enumerate() {
        out[perm.block_idx(bi)] = f(x);
    }
    out
}

/// Rename a processor-major array of `chunk`-sized per-processor groups,
/// keeping in-group order and renaming entries with `f`.
fn permute_proc_chunks<T: Copy>(
    src: &[T],
    chunk: usize,
    perm: &SymPerm,
    mut f: impl FnMut(T) -> T,
) -> Vec<T> {
    let mut out = src.to_vec();
    let procs = src.len() / chunk;
    for pi in 0..procs {
        for i in 0..chunk {
            out[perm.proc_idx(pi) * chunk + i] = f(src[pi * chunk + i]);
        }
    }
    out
}

/// Renamed 1-based block number.
fn re_block(b: u8, perm: &SymPerm) -> u8 {
    perm.block_idx((b - 1) as usize) as u8 + 1
}

/// Location renaming for the common `caches(p×b), mem(b), tail…` layout.
/// `loc` is decoded against the ranges in order; ranges beyond the listed
/// ones are handled by the caller.
fn permute_cache_mem_loc(loc: LocId, p: u32, b: u32, perm: &SymPerm) -> Option<LocId> {
    let i = loc - 1;
    if i < p * b {
        let (pi, bi) = (i / b, i % b);
        Some(perm.proc_idx(pi as usize) as u32 * b + perm.block_idx(bi as usize) as u32 + 1)
    } else if i < p * b + b {
        let bi = i - p * b;
        Some(p * b + perm.block_idx(bi as usize) as u32 + 1)
    } else {
        None
    }
}

// ----- zoo implementations --------------------------------------------------

impl Symmetry for SerialMemory {
    fn symmetry_dims(&self) -> SymDims {
        SymDims::FULL
    }

    fn permute_state(&self, s: &Self::State, perm: &SymPerm) -> Self::State {
        permute_blocks(s, perm, |v| perm.value(v))
    }

    fn permute_loc(&self, loc: LocId, perm: &SymPerm) -> LocId {
        perm.block_idx((loc - 1) as usize) as u32 + 1
    }

    fn encode_state(&self, s: &Self::State, out: &mut Vec<u64>) {
        out.extend(s.iter().map(|v| v.0 as u64));
    }

    fn sort_keys(&self, s: &Self::State, dim: SymDim, keys: &mut SortKeyBuf) -> Option<usize> {
        keys.clear();
        match dim {
            // No processor occurs in the state at all: every word is
            // invariant, so procs "cover" the whole encoding with empty
            // keys (the residual subgroup is all of S_p — the observer/
            // checker tail of the product encoding decides).
            SymDim::Procs => {
                for _ in 0..self.params().p {
                    keys.begin_key();
                }
                Some(s.len())
            }
            SymDim::Blocks => {
                for &v in s.iter() {
                    keys.begin_key();
                    keys.push(v.0 as u64);
                }
                Some(s.len())
            }
            // Values are word *contents*, not positions.
            SymDim::Values => None,
        }
    }
}

impl Symmetry for MsiProtocol {
    fn symmetry_dims(&self) -> SymDims {
        if self.is_buggy() {
            // The injected fault spares the *highest-numbered* sharer, so
            // processor renaming is not equivariant.
            SymDims {
                procs: false,
                blocks: true,
                values: true,
            }
        } else {
            SymDims::FULL
        }
    }

    fn permute_state(&self, s: &Self::State, perm: &SymPerm) -> Self::State {
        let pr = self.params();
        crate::msi::MsiState {
            lines: permute_pb_table(&s.lines, pr.p as usize, pr.b as usize, perm, |(l, v)| {
                (l, perm.value(v))
            }),
            mem: permute_blocks(&s.mem, perm, |v| perm.value(v)),
        }
    }

    fn permute_loc(&self, loc: LocId, perm: &SymPerm) -> LocId {
        let pr = self.params();
        permute_cache_mem_loc(loc, pr.p as u32, pr.b as u32, perm).expect("loc in range")
    }

    fn encode_state(&self, s: &Self::State, out: &mut Vec<u64>) {
        use crate::msi::Line;
        out.extend(s.lines.iter().map(|&(l, v)| {
            let l = match l {
                Line::M => 0u64,
                Line::S => 1,
                Line::I => 2,
            };
            l << 8 | v.0 as u64
        }));
        out.extend(s.mem.iter().map(|v| v.0 as u64));
    }

    fn sort_keys(&self, s: &Self::State, dim: SymDim, keys: &mut SortKeyBuf) -> Option<usize> {
        use crate::msi::Line;
        let pr = self.params();
        let (p, b) = (pr.p as usize, pr.b as usize);
        let word = |(l, v): (Line, scv_types::Value)| {
            let l = match l {
                Line::M => 0u64,
                Line::S => 1,
                Line::I => 2,
            };
            l << 8 | v.0 as u64
        };
        keys.clear();
        match dim {
            // Proc keys are whole cache rows; mem is proc-invariant.
            SymDim::Procs => {
                for pi in 0..p {
                    keys.begin_key();
                    for bi in 0..b {
                        keys.push(word(s.lines[pi * b + bi]));
                    }
                }
                Some(p * b + b)
            }
            // Block keys are strided cache columns plus the mem word.
            SymDim::Blocks => {
                for bi in 0..b {
                    keys.begin_key();
                    for pi in 0..p {
                        keys.push(word(s.lines[pi * b + bi]));
                    }
                    keys.push(s.mem[bi].0 as u64);
                }
                Some(p * b + b)
            }
            SymDim::Values => None,
        }
    }
}

impl Symmetry for MesiProtocol {
    fn symmetry_dims(&self) -> SymDims {
        if self.is_buggy() {
            // Buggy runs can reach double-M states, where BusRdX serves
            // the lowest-numbered M holder first — not proc-equivariant.
            SymDims {
                procs: false,
                blocks: true,
                values: true,
            }
        } else {
            SymDims::FULL
        }
    }

    fn permute_state(&self, s: &Self::State, perm: &SymPerm) -> Self::State {
        let pr = self.params();
        crate::mesi::MesiState {
            lines: permute_pb_table(&s.lines, pr.p as usize, pr.b as usize, perm, |(l, v)| {
                (l, perm.value(v))
            }),
            mem: permute_blocks(&s.mem, perm, |v| perm.value(v)),
        }
    }

    fn permute_loc(&self, loc: LocId, perm: &SymPerm) -> LocId {
        let pr = self.params();
        permute_cache_mem_loc(loc, pr.p as u32, pr.b as u32, perm).expect("loc in range")
    }

    fn encode_state(&self, s: &Self::State, out: &mut Vec<u64>) {
        use crate::mesi::MesiLine;
        out.extend(s.lines.iter().map(|&(l, v)| {
            let l = match l {
                MesiLine::M => 0u64,
                MesiLine::E => 1,
                MesiLine::S => 2,
                MesiLine::I => 3,
            };
            l << 8 | v.0 as u64
        }));
        out.extend(s.mem.iter().map(|v| v.0 as u64));
    }

    fn sort_keys(&self, s: &Self::State, dim: SymDim, keys: &mut SortKeyBuf) -> Option<usize> {
        use crate::mesi::MesiLine;
        let pr = self.params();
        let (p, b) = (pr.p as usize, pr.b as usize);
        let word = |(l, v): (MesiLine, scv_types::Value)| {
            let l = match l {
                MesiLine::M => 0u64,
                MesiLine::E => 1,
                MesiLine::S => 2,
                MesiLine::I => 3,
            };
            l << 8 | v.0 as u64
        };
        keys.clear();
        match dim {
            SymDim::Procs => {
                for pi in 0..p {
                    keys.begin_key();
                    for bi in 0..b {
                        keys.push(word(s.lines[pi * b + bi]));
                    }
                }
                Some(p * b + b)
            }
            SymDim::Blocks => {
                for bi in 0..b {
                    keys.begin_key();
                    for pi in 0..p {
                        keys.push(word(s.lines[pi * b + bi]));
                    }
                    keys.push(s.mem[bi].0 as u64);
                }
                Some(p * b + b)
            }
            SymDim::Values => None,
        }
    }
}

impl Symmetry for DirectoryProtocol {
    fn symmetry_dims(&self) -> SymDims {
        SymDims::FULL
    }

    fn permute_state(&self, s: &Self::State, perm: &SymPerm) -> Self::State {
        let pr = self.params();
        let (p, b) = (pr.p as usize, pr.b as usize);
        let dir = permute_blocks(&s.dir, perm, |e| match e {
            DirEntry::Uncached => DirEntry::Uncached,
            DirEntry::Shared(mask) => {
                let mut m = 0u8;
                for i in 0..p {
                    if mask & (1 << i) != 0 {
                        m |= 1 << perm.proc_idx(i);
                    }
                }
                DirEntry::Shared(m)
            }
            DirEntry::Owned(q) => DirEntry::Owned(perm.proc_idx((q - 1) as usize) as u8 + 1),
        });
        let mut resp = s.resp.clone();
        for (pi, &v) in s.resp.iter().enumerate() {
            resp[perm.proc_idx(pi)] = perm.value(v);
        }
        crate::directory::DirState {
            lines: permute_pb_table(&s.lines, p, b, perm, |(l, v)| (l, perm.value(v))),
            mem: permute_blocks(&s.mem, perm, |v| perm.value(v)),
            dir,
            resp,
        }
    }

    fn permute_loc(&self, loc: LocId, perm: &SymPerm) -> LocId {
        let pr = self.params();
        let (p, b) = (pr.p as u32, pr.b as u32);
        match permute_cache_mem_loc(loc, p, b, perm) {
            Some(l) => l,
            None => {
                let pi = loc - 1 - (p + 1) * b;
                (p + 1) * b + perm.proc_idx(pi as usize) as u32 + 1
            }
        }
    }

    fn encode_state(&self, s: &Self::State, out: &mut Vec<u64>) {
        use crate::directory::DirLine;
        out.extend(s.lines.iter().map(|&(l, v)| {
            let l = match l {
                DirLine::I => 0u64,
                DirLine::S => 1,
                DirLine::M => 2,
                DirLine::WaitS => 3,
                DirLine::WaitM => 4,
            };
            l << 8 | v.0 as u64
        }));
        out.extend(s.mem.iter().map(|v| v.0 as u64));
        out.extend(s.dir.iter().map(|e| match e {
            DirEntry::Uncached => 0u64,
            DirEntry::Shared(m) => 1 << 16 | *m as u64,
            DirEntry::Owned(q) => 2 << 16 | *q as u64,
        }));
        out.extend(s.resp.iter().map(|v| v.0 as u64));
    }

    fn sort_keys(&self, s: &Self::State, dim: SymDim, keys: &mut SortKeyBuf) -> Option<usize> {
        use crate::directory::DirLine;
        let pr = self.params();
        let (p, b) = (pr.p as usize, pr.b as usize);
        let word = |(l, v): (DirLine, scv_types::Value)| {
            let l = match l {
                DirLine::I => 0u64,
                DirLine::S => 1,
                DirLine::M => 2,
                DirLine::WaitS => 3,
                DirLine::WaitM => 4,
            };
            l << 8 | v.0 as u64
        };
        keys.clear();
        match dim {
            // Processor numbers occur *inside* the dir words (sharer
            // bitmask bits, owner number) and the resp array is
            // proc-positional but sits after dir — the positional prefix
            // stops at lines + mem; dir/resp are resolved by the residual
            // enumeration's full comparison.
            SymDim::Procs => {
                for pi in 0..p {
                    keys.begin_key();
                    for bi in 0..b {
                        keys.push(word(s.lines[pi * b + bi]));
                    }
                }
                Some(p * b + b)
            }
            // Blocks move lines columns, mem and dir words positionally
            // (dir *contents* name procs, not blocks) and leave resp
            // untouched: the whole encoding is covered.
            SymDim::Blocks => {
                for bi in 0..b {
                    keys.begin_key();
                    for pi in 0..p {
                        keys.push(word(s.lines[pi * b + bi]));
                    }
                    keys.push(s.mem[bi].0 as u64);
                    keys.push(match s.dir[bi] {
                        DirEntry::Uncached => 0u64,
                        DirEntry::Shared(m) => 1 << 16 | m as u64,
                        DirEntry::Owned(q) => 2 << 16 | q as u64,
                    });
                }
                Some(p * b + b + b + p)
            }
            SymDim::Values => None,
        }
    }
}

impl Symmetry for Fig4Protocol {
    fn symmetry_dims(&self) -> SymDims {
        SymDims::FULL
    }

    fn permute_state(&self, s: &Self::State, perm: &SymPerm) -> Self::State {
        let slots = (self.locations() / self.params().p as u32) as usize;
        permute_proc_chunks(s, slots, perm, |slot| {
            slot.map(|(b, v)| (re_block(b, perm), perm.value(v)))
        })
    }

    fn permute_loc(&self, loc: LocId, perm: &SymPerm) -> LocId {
        let slots = self.locations() / self.params().p as u32;
        let i = loc - 1;
        let (pi, si) = (i / slots, i % slots);
        perm.proc_idx(pi as usize) as u32 * slots + si + 1
    }

    fn encode_state(&self, s: &Self::State, out: &mut Vec<u64>) {
        out.extend(
            s.iter()
                .map(|slot| slot.map_or(u64::MAX, |(b, v)| (b as u64) << 8 | v.0 as u64)),
        );
    }

    fn sort_keys(&self, s: &Self::State, dim: SymDim, keys: &mut SortKeyBuf) -> Option<usize> {
        let slots = (self.locations() / self.params().p as u32) as usize;
        keys.clear();
        match dim {
            // Proc keys are whole per-processor slot chunks.
            SymDim::Procs => {
                for chunk in s.chunks(slots) {
                    keys.begin_key();
                    for slot in chunk {
                        keys.push(slot.map_or(u64::MAX, |(b, v)| (b as u64) << 8 | v.0 as u64));
                    }
                }
                Some(s.len())
            }
            // Block and value numbers occur inside the slot words.
            SymDim::Blocks | SymDim::Values => None,
        }
    }
}

impl Symmetry for StoreBufferTso {
    fn symmetry_dims(&self) -> SymDims {
        SymDims::FULL
    }

    fn permute_state(&self, s: &Self::State, perm: &SymPerm) -> Self::State {
        crate::tso::TsoState {
            buf: permute_proc_chunks(&s.buf, self.depth() as usize, perm, |e| {
                e.map(|(b, v)| (re_block(b, perm), perm.value(v)))
            }),
            mem: permute_blocks(&s.mem, perm, |v| perm.value(v)),
        }
    }

    fn permute_loc(&self, loc: LocId, perm: &SymPerm) -> LocId {
        let pr = self.params();
        let (p, d, b) = (pr.p as u32, self.depth() as u32, pr.b as u32);
        let i = loc - 1;
        if i < p * d {
            let (pi, si) = (i / d, i % d);
            perm.proc_idx(pi as usize) as u32 * d + si + 1
        } else {
            let bi = i - p * d;
            debug_assert!(bi < b);
            p * d + perm.block_idx(bi as usize) as u32 + 1
        }
    }

    fn encode_state(&self, s: &Self::State, out: &mut Vec<u64>) {
        out.extend(
            s.buf
                .iter()
                .map(|e| e.map_or(u64::MAX, |(b, v)| (b as u64) << 8 | v.0 as u64)),
        );
        out.extend(s.mem.iter().map(|v| v.0 as u64));
    }

    fn sort_keys(&self, s: &Self::State, dim: SymDim, keys: &mut SortKeyBuf) -> Option<usize> {
        let d = self.depth() as usize;
        keys.clear();
        match dim {
            // Proc keys are whole store-buffer chunks; mem is
            // proc-invariant.
            SymDim::Procs => {
                for chunk in s.buf.chunks(d) {
                    keys.begin_key();
                    for e in chunk {
                        keys.push(e.map_or(u64::MAX, |(b, v)| (b as u64) << 8 | v.0 as u64));
                    }
                }
                Some(s.buf.len() + s.mem.len())
            }
            // Block numbers occur inside the buffered-store words (which
            // precede mem), and values inside every data word.
            SymDim::Blocks | SymDim::Values => None,
        }
    }
}

impl Symmetry for LazyCaching {
    fn symmetry_dims(&self) -> SymDims {
        // Value symmetry is deliberately excluded: the queue contents pin
        // broadcast order to concrete values, and the serialization-policy
        // machinery is only exercised under the conservative group.
        SymDims {
            procs: true,
            blocks: true,
            values: false,
        }
    }

    fn permute_state(&self, s: &Self::State, perm: &SymPerm) -> Self::State {
        let pr = self.params();
        let (p, b) = (pr.p as usize, pr.b as usize);
        crate::lazy::LazyState {
            cache: permute_pb_table(&s.cache, p, b, perm, |v| v.map(|v| perm.value(v))),
            mem: permute_blocks(&s.mem, perm, |v| perm.value(v)),
            out: permute_proc_chunks(&s.out, self.out_depth() as usize, perm, |e| {
                e.map(|(blk, v)| (re_block(blk, perm), perm.value(v)))
            }),
            inq: permute_proc_chunks(&s.inq, self.in_depth() as usize, perm, |e| {
                e.map(|(blk, v, star)| (re_block(blk, perm), perm.value(v), star))
            }),
        }
    }

    fn permute_loc(&self, loc: LocId, perm: &SymPerm) -> LocId {
        let pr = self.params();
        let (p, b) = (pr.p as u32, pr.b as u32);
        if let Some(l) = permute_cache_mem_loc(loc, p, b, perm) {
            return l;
        }
        let (qo, qi) = (self.out_depth() as u32, self.in_depth() as u32);
        let base = (p + 1) * b;
        let i = loc - 1 - base;
        if i < p * qo {
            let (pi, si) = (i / qo, i % qo);
            base + perm.proc_idx(pi as usize) as u32 * qo + si + 1
        } else {
            let i = i - p * qo;
            debug_assert!(i < p * qi);
            let (pi, si) = (i / qi, i % qi);
            base + p * qo + perm.proc_idx(pi as usize) as u32 * qi + si + 1
        }
    }

    fn encode_state(&self, s: &Self::State, out: &mut Vec<u64>) {
        out.extend(s.cache.iter().map(|v| v.map_or(u64::MAX, |v| v.0 as u64)));
        out.extend(s.mem.iter().map(|v| v.0 as u64));
        out.extend(
            s.out
                .iter()
                .map(|e| e.map_or(u64::MAX, |(b, v)| (b as u64) << 8 | v.0 as u64)),
        );
        out.extend(s.inq.iter().map(|e| {
            e.map_or(u64::MAX, |(b, v, star)| {
                (b as u64) << 16 | (v.0 as u64) << 8 | star as u64
            })
        }));
    }

    fn sort_keys(&self, s: &Self::State, dim: SymDim, keys: &mut SortKeyBuf) -> Option<usize> {
        let pr = self.params();
        let (p, b) = (pr.p as usize, pr.b as usize);
        let (qo, qi) = (self.out_depth() as usize, self.in_depth() as usize);
        keys.clear();
        match dim {
            // Proc keys span three segments — cache row, out-queue chunk,
            // in-queue chunk — with the proc-invariant mem array between
            // the first two. Segment-uniform, so the composite sort is
            // exact over the whole encoding.
            SymDim::Procs => {
                for pi in 0..p {
                    keys.begin_key();
                    for bi in 0..b {
                        keys.push(s.cache[pi * b + bi].map_or(u64::MAX, |v| v.0 as u64));
                    }
                    for e in &s.out[pi * qo..(pi + 1) * qo] {
                        keys.push(e.map_or(u64::MAX, |(blk, v)| (blk as u64) << 8 | v.0 as u64));
                    }
                    for e in &s.inq[pi * qi..(pi + 1) * qi] {
                        keys.push(e.map_or(u64::MAX, |(blk, v, star)| {
                            (blk as u64) << 16 | (v.0 as u64) << 8 | star as u64
                        }));
                    }
                }
                Some(p * b + b + p * qo + p * qi)
            }
            // Block keys cover the cache columns and mem word; the queue
            // entries carry block numbers *inside* their words, so the
            // positional prefix stops at mem and the queues are resolved
            // by the residual enumeration's full comparison.
            SymDim::Blocks => {
                for bi in 0..b {
                    keys.begin_key();
                    for pi in 0..p {
                        keys.push(s.cache[pi * b + bi].map_or(u64::MAX, |v| v.0 as u64));
                    }
                    keys.push(s.mem[bi].0 as u64);
                }
                Some(p * b + b)
            }
            SymDim::Values => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_types::Params;

    fn enc<P: Symmetry>(proto: &P, s: &P::State) -> Vec<u64> {
        let mut out = Vec::new();
        proto.encode_state(s, &mut out);
        out
    }

    /// Transition equivariance: the successor *states* of `g·s` are
    /// exactly `g` applied to the successor states of `s`, and renamed
    /// memory actions match renamed ops. This is the soundness core of
    /// the quotient search. (Successor sets are compared through the
    /// injective encoding, since states don't implement `Ord`.)
    fn check_equivariance<P: Symmetry + Clone>(proto: &P, seed: u64, steps: usize) {
        let group = SymPerm::group(proto.params(), proto.symmetry_dims(), 64);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut r = Runner::new(proto.clone());
        for _ in 0..steps {
            let s = r.state().clone();
            for g in &group {
                let gs = proto.permute_state(&s, g);
                let mut of_gs: Vec<Vec<u64>> = proto
                    .transitions(&gs)
                    .into_iter()
                    .map(|t| enc(proto, &t.next))
                    .collect();
                let mut g_of_s: Vec<Vec<u64>> = proto
                    .transitions(&s)
                    .into_iter()
                    .map(|t| enc(proto, &proto.permute_state(&t.next, g)))
                    .collect();
                of_gs.sort_unstable();
                g_of_s.sort_unstable();
                assert_eq!(of_gs, g_of_s, "successors not equivariant under {g:?}");
                // Memory actions rename consistently.
                let mut of_gs_ops: Vec<_> = proto
                    .transitions(&gs)
                    .into_iter()
                    .filter_map(|t| t.action.op())
                    .collect();
                let mut g_ops: Vec<_> = proto
                    .transitions(&s)
                    .into_iter()
                    .filter_map(|t| t.action.op().map(|o| g.op(o)))
                    .collect();
                of_gs_ops.sort_unstable();
                g_ops.sort_unstable();
                assert_eq!(of_gs_ops, g_ops, "actions not equivariant under {g:?}");
            }
            if !r.step_random(&mut rng) {
                break;
            }
        }
    }

    fn check_action_and_locs<P: Symmetry>(proto: &P) {
        let group = SymPerm::group(proto.params(), proto.symmetry_dims(), 64);
        let init = proto.initial();
        for g in &group {
            // The initial state is a fixed point of the whole group.
            assert_eq!(
                proto.permute_state(&init, g),
                init,
                "initial state must be symmetric"
            );
            // permute_loc is a permutation of 1..=L (checked inside).
            let (fwd, inv) = location_maps(proto, g);
            for old in 1..=proto.locations() {
                assert_eq!(inv[fwd[old as usize] as usize], old);
            }
            // Group action: identity fixes everything.
            if g.is_identity() {
                for l in 1..=proto.locations() {
                    assert_eq!(proto.permute_loc(l, g), l);
                }
            }
        }
    }

    /// The `sort_keys` contract, checked by brute force: for every
    /// supported dimension and every reachable state on a random walk,
    /// the stably-sorted key order must achieve the lexicographically
    /// minimal `covered`-prefix over *all* perms of that dimension, and
    /// the tie runs (fed through `ResidualEnum`) must reproduce the exact
    /// argmin set — no winning arrangement missed, none invented.
    fn check_sort_keys<P: Symmetry + Clone>(proto: &P, seed: u64, steps: usize) {
        use scv_types::ResidualEnum;
        let dims = proto.symmetry_dims();
        let params = proto.params();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut r = Runner::new(proto.clone());
        let id = |n: u8| (0..n).collect::<Vec<u8>>();
        let single = |dim: SymDim, fwd: &[u8]| match dim {
            SymDim::Procs => SymPerm::from_parts(fwd.to_vec(), id(params.b), id(params.v)),
            SymDim::Blocks => SymPerm::from_parts(id(params.p), fwd.to_vec(), id(params.v)),
            SymDim::Values => SymPerm::from_parts(id(params.p), id(params.b), fwd.to_vec()),
        };
        let mut supported = 0;
        for _ in 0..steps {
            let s = r.state().clone();
            for dim in SymDim::ALL {
                if !dims.has(dim) {
                    continue;
                }
                let mut keys = SortKeyBuf::new();
                let Some(covered) = proto.sort_keys(&s, dim, &mut keys) else {
                    continue;
                };
                supported += 1;
                let n = dim.count(params) as usize;
                assert_eq!(keys.len(), n, "one key per element");
                let full = enc(proto, &s);
                assert!(covered <= full.len(), "covered prefix within encoding");
                // Brute force: every single-dimension perm's prefix.
                let mut all = ResidualEnum::new();
                let order: Vec<u8> = (0..n as u8).collect();
                let runs = if n >= 2 {
                    vec![(0u32, n as u32)]
                } else {
                    vec![]
                };
                all.reset(&order, &runs);
                let mut best: Option<Vec<u64>> = None;
                let mut argmin: Vec<Vec<u8>> = Vec::new();
                while let Some(arr) = all.next() {
                    // arr[rank] = element ⇒ fwd[element] = rank.
                    let mut fwd = vec![0u8; n];
                    for (rank, &el) in arr.iter().enumerate() {
                        fwd[el as usize] = rank as u8;
                    }
                    let g = single(dim, &fwd);
                    let e = enc(proto, &proto.permute_state(&s, &g));
                    assert_eq!(e.len(), full.len(), "perms preserve length");
                    let pre = e[..covered].to_vec();
                    match &mut best {
                        None => {
                            best = Some(pre);
                            argmin.push(arr.to_vec());
                        }
                        Some(b) if pre < *b => {
                            *b = pre;
                            argmin.clear();
                            argmin.push(arr.to_vec());
                        }
                        Some(b) if pre == *b => argmin.push(arr.to_vec()),
                        _ => {}
                    }
                }
                // Prediction: stable sort by composite key; tie runs give
                // the residual subgroup.
                let mut pred: Vec<u8> = (0..n as u8).collect();
                pred.sort_by(|&x, &y| keys.key(x as usize).cmp(keys.key(y as usize)));
                let mut runs: Vec<(u32, u32)> = Vec::new();
                let mut start = 0usize;
                for i in 1..=n {
                    if i == n || keys.key(pred[i] as usize) != keys.key(pred[start] as usize) {
                        if i - start >= 2 {
                            runs.push((start as u32, (i - start) as u32));
                        }
                        start = i;
                    }
                }
                let mut re = ResidualEnum::new();
                re.reset(&pred, &runs);
                let mut predicted: Vec<Vec<u8>> = Vec::new();
                while let Some(a) = re.next() {
                    predicted.push(a.to_vec());
                }
                predicted.sort_unstable();
                argmin.sort_unstable();
                assert_eq!(
                    predicted, argmin,
                    "sorted-key argmin set must equal brute force for {dim:?}"
                );
            }
            if !r.step_random(&mut rng) {
                break;
            }
        }
        assert!(supported > 0, "protocol supports no sortable dimension");
    }

    #[test]
    fn sort_keys_match_brute_force_argmin_on_the_zoo() {
        check_sort_keys(&SerialMemory::new(Params::new(3, 2, 2)), 51, 25);
        check_sort_keys(&MsiProtocol::new(Params::new(3, 2, 2)), 52, 25);
        check_sort_keys(&MsiProtocol::buggy(Params::new(3, 2, 2)), 53, 25);
        check_sort_keys(&MesiProtocol::new(Params::new(3, 2, 2)), 54, 25);
        check_sort_keys(&MesiProtocol::buggy(Params::new(3, 2, 2)), 55, 25);
        check_sort_keys(&DirectoryProtocol::new(Params::new(3, 2, 2)), 56, 25);
        check_sort_keys(&Fig4Protocol::new(Params::new(3, 2, 2), 2), 57, 25);
        check_sort_keys(&StoreBufferTso::new(Params::new(3, 2, 2), 2), 58, 25);
        check_sort_keys(&LazyCaching::new(Params::new(3, 2, 2), 2, 2), 59, 25);
    }

    #[test]
    fn serial_memory_is_fully_symmetric() {
        let p = SerialMemory::new(Params::new(2, 2, 2));
        check_action_and_locs(&p);
        check_equivariance(&p, 31, 30);
    }

    #[test]
    fn msi_is_fully_symmetric() {
        let p = MsiProtocol::new(Params::new(3, 2, 2));
        assert_eq!(p.symmetry_dims(), SymDims::FULL);
        check_action_and_locs(&p);
        check_equivariance(&p, 32, 25);
    }

    #[test]
    fn buggy_msi_keeps_block_value_symmetry_only() {
        let p = MsiProtocol::buggy(Params::new(3, 2, 2));
        assert!(!p.symmetry_dims().procs);
        assert!(p.symmetry_dims().blocks && p.symmetry_dims().values);
        check_action_and_locs(&p);
        check_equivariance(&p, 33, 25);
    }

    #[test]
    fn mesi_symmetry() {
        let p = MesiProtocol::new(Params::new(3, 2, 2));
        check_action_and_locs(&p);
        check_equivariance(&p, 34, 25);
        assert!(
            !MesiProtocol::buggy(Params::new(2, 1, 1))
                .symmetry_dims()
                .procs
        );
        check_equivariance(&MesiProtocol::buggy(Params::new(2, 2, 2)), 35, 25);
    }

    #[test]
    fn directory_symmetry_renames_bitmask_and_owner() {
        let p = DirectoryProtocol::new(Params::new(3, 2, 2));
        check_action_and_locs(&p);
        check_equivariance(&p, 36, 25);
    }

    #[test]
    fn fig4_and_tso_symmetry() {
        let f = Fig4Protocol::new(Params::new(2, 2, 2), 2);
        check_action_and_locs(&f);
        check_equivariance(&f, 37, 25);
        let t = StoreBufferTso::new(Params::new(2, 2, 2), 2);
        check_action_and_locs(&t);
        check_equivariance(&t, 38, 25);
    }

    #[test]
    fn lazy_caching_excludes_value_symmetry() {
        let p = LazyCaching::new(Params::new(2, 2, 2), 2, 2);
        assert!(!p.symmetry_dims().values);
        check_action_and_locs(&p);
        check_equivariance(&p, 39, 25);
    }

    #[test]
    fn canonical_state_encoding_is_orbit_invariant() {
        let proto = MsiProtocol::new(Params::new(2, 2, 2));
        let group = SymPerm::group(proto.params(), proto.symmetry_dims(), 1024);
        let mut rng = SmallRng::seed_from_u64(40);
        let mut r = Runner::new(proto.clone());
        for _ in 0..40 {
            let s = r.state().clone();
            let canon = canonical_state_encoding(&proto, &s, &group);
            for g in &group {
                let gs = proto.permute_state(&s, g);
                assert_eq!(
                    canonical_state_encoding(&proto, &gs, &group),
                    canon,
                    "orbit members must canonicalize identically"
                );
            }
            if !r.step_random(&mut rng) {
                break;
            }
        }
    }
}
