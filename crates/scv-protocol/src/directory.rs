//! A directory-based coherence protocol with explicit response messages.
//!
//! A home directory per block tracks the owner / sharer set; a requesting
//! processor goes through a transient Wait state while its fill value sits
//! in a per-processor *response buffer* — a network-message storage
//! location in the sense of §4.1 ("queues, network message packets, or
//! caches"). Directory transactions are atomic (the interconnect is
//! abstracted), invalidations abort in-flight fills (NACK-style), and
//! stores require M — so stores serialize in real time and the protocol is
//! sequentially consistent.

use crate::api::{Action, CopySrc, LocId, Protocol, Tracking, Transition};
use scv_types::{BlockId, Op, Params, ProcId, Value};

/// Per-(processor, block) cache-line state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DirLine {
    /// Invalid.
    I,
    /// Shared (clean).
    S,
    /// Modified (exclusive, dirty).
    M,
    /// Waiting for a shared fill (response buffered).
    WaitS,
    /// Waiting for an exclusive fill (response buffered).
    WaitM,
}

/// Directory state per block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DirEntry {
    /// No cached copies.
    Uncached,
    /// Clean copies at the processors in the bitmask.
    Shared(u8),
    /// Dirty exclusive copy at the processor.
    Owned(u8),
}

/// Full protocol state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DirState {
    /// `lines[p.idx()*b + blk.idx()]` = (line state, cached value).
    pub lines: Vec<(DirLine, Value)>,
    /// Memory per block.
    pub mem: Vec<Value>,
    /// Directory entry per block.
    pub dir: Vec<DirEntry>,
    /// Response buffer per processor (value in flight).
    pub resp: Vec<Value>,
}

/// The directory protocol.
#[derive(Clone, Debug)]
pub struct DirectoryProtocol {
    params: Params,
}

impl DirectoryProtocol {
    /// Create a directory protocol.
    pub fn new(params: Params) -> Self {
        assert!(params.p <= 8, "sharer bitmask is u8");
        DirectoryProtocol { params }
    }

    /// Location id of `p`'s cache line for `b`.
    pub fn cache_loc(&self, p: ProcId, b: BlockId) -> LocId {
        (p.idx() * self.params.b as usize + b.idx() + 1) as LocId
    }

    /// Location id of the memory word for `b`.
    pub fn mem_loc(&self, b: BlockId) -> LocId {
        (self.params.p as usize * self.params.b as usize + b.idx() + 1) as LocId
    }

    /// Location id of `p`'s response buffer.
    pub fn resp_loc(&self, p: ProcId) -> LocId {
        ((self.params.p as usize + 1) * self.params.b as usize + p.idx() + 1) as LocId
    }

    fn line(&self, s: &DirState, p: ProcId, b: BlockId) -> (DirLine, Value) {
        s.lines[p.idx() * self.params.b as usize + b.idx()]
    }

    fn line_mut<'a>(&self, s: &'a mut DirState, p: ProcId, b: BlockId) -> &'a mut (DirLine, Value) {
        &mut s.lines[p.idx() * self.params.b as usize + b.idx()]
    }

    /// Does `p` have any outstanding request (WaitS/WaitM on any block)?
    fn outstanding(&self, s: &DirState, p: ProcId) -> bool {
        self.params
            .blocks()
            .any(|b| matches!(self.line(s, p, b).0, DirLine::WaitS | DirLine::WaitM))
    }

    /// The block `p` is waiting on, if any.
    fn waiting_block(&self, s: &DirState, p: ProcId) -> Option<(BlockId, DirLine)> {
        self.params.blocks().find_map(|b| {
            let (l, _) = self.line(s, p, b);
            matches!(l, DirLine::WaitS | DirLine::WaitM).then_some((b, l))
        })
    }
}

impl Protocol for DirectoryProtocol {
    type State = DirState;

    fn name(&self) -> &'static str {
        "directory"
    }

    fn params(&self) -> Params {
        self.params
    }

    fn locations(&self) -> u32 {
        // caches + memory + response buffers
        (self.params.p as u32 + 1) * self.params.b as u32 + self.params.p as u32
    }

    fn initial(&self) -> Self::State {
        DirState {
            lines: vec![(DirLine::I, Value::BOTTOM); (self.params.p * self.params.b) as usize],
            mem: vec![Value::BOTTOM; self.params.b as usize],
            dir: vec![DirEntry::Uncached; self.params.b as usize],
            resp: vec![Value::BOTTOM; self.params.p as usize],
        }
    }

    fn transitions(&self, s: &Self::State) -> Vec<Transition<Self::State>> {
        let mut out = Vec::new();
        self.transitions_into(s, &mut out);
        out
    }

    fn transitions_into(&self, s: &Self::State, out: &mut Vec<Transition<Self::State>>) {
        for p in self.params.procs() {
            // Fill completions.
            if let Some((b, wait)) = self.waiting_block(s, p) {
                let mut next = s.clone();
                let v = s.resp[p.idx()];
                *self.line_mut(&mut next, p, b) = (
                    if wait == DirLine::WaitS {
                        DirLine::S
                    } else {
                        DirLine::M
                    },
                    v,
                );
                out.push(Transition {
                    action: Action::Internal(
                        if wait == DirLine::WaitS {
                            "FillS"
                        } else {
                            "FillM"
                        },
                        self.cache_loc(p, b),
                    ),
                    next,
                    tracking: Tracking::copies(vec![(
                        self.cache_loc(p, b),
                        CopySrc::Loc(self.resp_loc(p)),
                    )]),
                });
            }
            for b in self.params.blocks() {
                let (line, val) = self.line(s, p, b);
                // Hits.
                if matches!(line, DirLine::S | DirLine::M) {
                    out.push(Transition {
                        action: Action::Mem(Op::load(p, b, val)),
                        next: s.clone(),
                        tracking: Tracking::mem(self.cache_loc(p, b)),
                    });
                }
                if line == DirLine::M {
                    for v in self.params.values() {
                        let mut next = s.clone();
                        self.line_mut(&mut next, p, b).1 = v;
                        out.push(Transition {
                            action: Action::Mem(Op::store(p, b, v)),
                            next,
                            tracking: Tracking::mem(self.cache_loc(p, b)),
                        });
                    }
                    // Writeback-eviction: dirty data home, directory
                    // uncached.
                    let mut next = s.clone();
                    next.mem[b.idx()] = val;
                    next.dir[b.idx()] = DirEntry::Uncached;
                    *self.line_mut(&mut next, p, b) = (DirLine::I, val);
                    out.push(Transition {
                        action: Action::Internal("WbEvict", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(vec![
                            (self.mem_loc(b), CopySrc::Loc(self.cache_loc(p, b))),
                            (self.cache_loc(p, b), CopySrc::Invalid),
                        ]),
                    });
                }
                if line == DirLine::S {
                    // Silent eviction; directory sharer bit cleared.
                    let mut next = s.clone();
                    if let DirEntry::Shared(mask) = next.dir[b.idx()] {
                        let m = mask & !(1 << p.idx());
                        next.dir[b.idx()] = if m == 0 {
                            DirEntry::Uncached
                        } else {
                            DirEntry::Shared(m)
                        };
                    }
                    *self.line_mut(&mut next, p, b) = (DirLine::I, val);
                    out.push(Transition {
                        action: Action::Internal("Evict", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(vec![(self.cache_loc(p, b), CopySrc::Invalid)]),
                    });
                }
                // Requests (only from I, one outstanding per processor).
                // While an exclusive fill is in flight (directory says
                // Owned but the owner is still WaitM), the home blocks new
                // requests for the block — the atomic-directory analogue
                // of NACKing until the previous transaction completes.
                let home_ready = match s.dir[b.idx()] {
                    DirEntry::Owned(q) => self.line(s, ProcId(q), b).0 == DirLine::M,
                    _ => true,
                };
                if line == DirLine::I && home_ready && !self.outstanding(s, p) {
                    // ReqS: home returns the clean value.
                    let mut next = s.clone();
                    let mut copies = Vec::new();
                    match s.dir[b.idx()] {
                        DirEntry::Owned(q) => {
                            let q = ProcId(q);
                            // Owner writes back and downgrades.
                            copies.push((self.mem_loc(b), CopySrc::Loc(self.cache_loc(q, b))));
                            next.mem[b.idx()] = self.line(s, q, b).1;
                            self.line_mut(&mut next, q, b).0 = DirLine::S;
                            next.dir[b.idx()] = DirEntry::Shared((1 << q.idx()) | (1 << p.idx()));
                        }
                        DirEntry::Shared(mask) => {
                            next.dir[b.idx()] = DirEntry::Shared(mask | (1 << p.idx()));
                        }
                        DirEntry::Uncached => {
                            next.dir[b.idx()] = DirEntry::Shared(1 << p.idx());
                        }
                    }
                    copies.push((self.resp_loc(p), CopySrc::Loc(self.mem_loc(b))));
                    next.resp[p.idx()] = next.mem[b.idx()];
                    self.line_mut(&mut next, p, b).0 = DirLine::WaitS;
                    out.push(Transition {
                        action: Action::Internal("ReqS", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(copies),
                    });

                    // ReqM: invalidate sharers (and abort in-flight fills),
                    // take the owner's data or memory's.
                    let mut next = s.clone();
                    let mut copies = Vec::new();
                    match s.dir[b.idx()] {
                        DirEntry::Owned(q) => {
                            let q = ProcId(q);
                            copies.push((self.resp_loc(p), CopySrc::Loc(self.cache_loc(q, b))));
                            next.resp[p.idx()] = self.line(s, q, b).1;
                            *self.line_mut(&mut next, q, b) = (DirLine::I, self.line(s, q, b).1);
                            copies.push((self.cache_loc(q, b), CopySrc::Invalid));
                        }
                        DirEntry::Shared(mask) => {
                            for q in self.params.procs() {
                                if q != p && mask & (1 << q.idx()) != 0 {
                                    self.line_mut(&mut next, q, b).0 = DirLine::I;
                                    copies.push((self.cache_loc(q, b), CopySrc::Invalid));
                                }
                            }
                            copies.push((self.resp_loc(p), CopySrc::Loc(self.mem_loc(b))));
                            next.resp[p.idx()] = s.mem[b.idx()];
                        }
                        DirEntry::Uncached => {
                            copies.push((self.resp_loc(p), CopySrc::Loc(self.mem_loc(b))));
                            next.resp[p.idx()] = s.mem[b.idx()];
                        }
                    }
                    // Abort any in-flight shared fills for this block.
                    for q in self.params.procs() {
                        if q != p && self.line(s, q, b).0 == DirLine::WaitS {
                            self.line_mut(&mut next, q, b).0 = DirLine::I;
                            copies.push((self.resp_loc(q), CopySrc::Invalid));
                        }
                    }
                    next.dir[b.idx()] = DirEntry::Owned(p.0);
                    self.line_mut(&mut next, p, b).0 = DirLine::WaitM;
                    out.push(Transition {
                        action: Action::Internal("ReqM", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(copies),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_graph::has_serial_reordering;

    #[test]
    fn random_runs_are_sc() {
        let mut rng = SmallRng::seed_from_u64(31);
        for i in 0..15 {
            let mut r = Runner::new(DirectoryProtocol::new(Params::new(2, 2, 2)));
            r.run_random(50, 0.5, &mut rng);
            let t = r.run().trace();
            assert!(has_serial_reordering(&t), "run {i}: non-SC trace {t}");
        }
    }

    #[test]
    fn request_fill_roundtrip() {
        let proto = DirectoryProtocol::new(Params::new(2, 1, 2));
        let mut r = Runner::new(proto);
        let req = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("ReqS", 1)))
            .unwrap();
        r.take(req);
        assert_eq!(r.state().lines[0].0, DirLine::WaitS);
        let fill = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("FillS", 1)))
            .unwrap();
        r.take(fill);
        assert_eq!(r.state().lines[0].0, DirLine::S);
        // The fill's tracking copies from the response buffer.
        let step = r.run().steps.last().unwrap();
        let p1 = ProcId(1);
        let proto = DirectoryProtocol::new(Params::new(2, 1, 2));
        assert_eq!(
            step.tracking.copies,
            vec![(
                proto.cache_loc(p1, BlockId(1)),
                CopySrc::Loc(proto.resp_loc(p1))
            )]
        );
    }

    #[test]
    fn reqm_aborts_inflight_fills() {
        let proto = DirectoryProtocol::new(Params::new(2, 1, 2));
        let mut r = Runner::new(proto);
        // P1 requests shared...
        let req = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("ReqS", 1)))
            .unwrap();
        r.take(req);
        // ...but P2 grabs exclusive before the fill lands.
        let reqm = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("ReqM", 2)))
            .unwrap();
        r.take(reqm);
        // P1's fill was aborted.
        assert_eq!(r.state().lines[0].0, DirLine::I);
        assert!(!r
            .enabled()
            .iter()
            .any(|t| matches!(t.action, Action::Internal("FillS", 1))));
    }

    #[test]
    fn one_outstanding_request_per_processor() {
        let proto = DirectoryProtocol::new(Params::new(1, 2, 1));
        let mut r = Runner::new(proto);
        let req = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("ReqS", _)))
            .unwrap();
        r.take(req);
        // No further requests until the fill completes.
        assert!(!r
            .enabled()
            .iter()
            .any(|t| matches!(t.action, Action::Internal("ReqS" | "ReqM", _))));
    }

    #[test]
    fn owner_writeback_on_reqs() {
        let proto = DirectoryProtocol::new(Params::new(2, 1, 2));
        let mut r = Runner::new(proto);
        let p1 = ProcId(1);
        let p2 = ProcId(2);
        let b = BlockId(1);
        // P1 gets M and stores 2.
        let reqm = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("ReqM", 1)))
            .unwrap();
        r.take(reqm);
        let fill = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("FillM", 1)))
            .unwrap();
        r.take(fill);
        let st = r
            .enabled()
            .into_iter()
            .find(|t| t.action.op() == Some(Op::store(p1, b, Value(2))))
            .unwrap();
        r.take(st);
        // P2 requests shared: owner must write back; P2's response holds 2.
        let reqs = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("ReqS", 2)))
            .unwrap();
        r.take(reqs);
        assert_eq!(r.state().mem[0], Value(2));
        assert_eq!(r.state().resp[p2.idx()], Value(2));
        assert_eq!(r.state().lines[0].0, DirLine::S, "owner downgraded");
    }
}
