//! Finite-state memory-system protocols with storage locations and
//! tracking labels (§2.1 and §4.1 of Condon & Hu, SPAA 2001).
//!
//! A [`Protocol`] is a finite-state machine whose actions are either memory
//! operations (`LD`/`ST`, the trace alphabet) or internal actions
//! (bus/network/queue activity). Every protocol explicitly declares `L`
//! *storage locations* — caches, queues, buffers, memory words — and every
//! transition carries *tracking labels*:
//!
//! * a `LD`/`ST` transition names the location it reads or writes (the
//!   LD/ST tracking function `f`);
//! * an internal transition lists which locations received *copies* from
//!   which other locations (the copy tracking functions `c_l`), or were
//!   invalidated.
//!
//! From the tracking labels alone, the observer of `scv-observer` infers
//! which ST conferred its value on every location ([`StIndexTracker`],
//! §4.1) and hence which ST every LD inherits from.
//!
//! The crate ships the protocol zoo used throughout the reproduction:
//!
//! | protocol | SC? | notes |
//! |---|---|---|
//! | [`SerialMemory`] | yes | atomic memory; the trivial baseline |
//! | [`Fig4Protocol`] | **no** (stale Get-Shared copies) | the Get-Shared cache of paper Figure 4 |
//! | [`MsiProtocol`] | yes | snooping MSI on an atomic bus |
//! | [`DirectoryProtocol`] | yes | directory home node, response buffers as network locations |
//! | [`LazyCaching`] | yes | Afek et al.; needs the non-trivial ST order generator of §4.2 |
//! | [`StoreBufferTso`] | **no** | FIFO store buffers without fences |
//! | [`MsiProtocol::buggy`] | **no** | MSI with a lost invalidation (fault injection) |

pub mod api;
pub mod directory;
pub mod fig4;
pub mod lazy;
pub mod litmus;
pub mod mesi;
pub mod msi;
pub mod runner;
pub mod serial;
pub mod symmetry;
pub mod tso;

pub use api::{Action, CopySrc, LocId, Protocol, StOrderPolicy, Tracking, Transition};
pub use directory::DirectoryProtocol;
pub use fig4::Fig4Protocol;
pub use lazy::LazyCaching;
pub use litmus::{realizable, realization, Litmus};
pub use mesi::MesiProtocol;
pub use msi::MsiProtocol;
pub use runner::{Run, Runner, StIndexTracker, Step};
pub use serial::SerialMemory;
pub use symmetry::{canonical_state_encoding, location_maps, Symmetry};
pub use tso::StoreBufferTso;
