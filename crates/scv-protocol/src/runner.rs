//! Protocol execution: runs, random walks, and the ST-index computation of
//! §4.1.

use crate::api::{Action, CopySrc, Protocol, Tracking, Transition};
use rand::seq::SliceRandom;
use rand::Rng;
use scv_types::Trace;

/// One executed step of a protocol run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Step {
    /// The action taken.
    pub action: Action,
    /// Its tracking labels.
    pub tracking: Tracking,
}

/// A finite protocol run: the sequence of actions taken (with tracking
/// labels). The trace is the subsequence of memory operations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Run {
    /// Executed steps, in order.
    pub steps: Vec<Step>,
}

impl Run {
    /// The trace of the run: its `LD`/`ST` operations in order (§2.1).
    pub fn trace(&self) -> Trace {
        self.steps.iter().filter_map(|s| s.action.op()).collect()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is the run empty?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Incremental ST-index computation (§4.1): for every location `l`,
/// `ST-index(R, l)` is 0, or the (1-based) trace index of the ST operation
/// whose value location `l` currently holds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StIndexTracker {
    /// `idx[l-1]` = current ST index of location `l` (0 = none).
    idx: Vec<u32>,
    /// Number of trace (memory) operations seen.
    trace_ops: u32,
}

impl StIndexTracker {
    /// A tracker for `locations` locations, all initially 0.
    pub fn new(locations: u32) -> Self {
        StIndexTracker {
            idx: vec![0; locations as usize],
            trace_ops: 0,
        }
    }

    /// The current ST index of location `l`.
    pub fn st_index(&self, l: crate::api::LocId) -> u32 {
        self.idx[(l - 1) as usize]
    }

    /// All ST indexes, by location.
    pub fn all(&self) -> &[u32] {
        &self.idx
    }

    /// Number of trace operations processed.
    pub fn trace_ops(&self) -> u32 {
        self.trace_ops
    }

    /// Advance over one step. For a LD, returns the ST index of the
    /// location the LD read from (0 means the load read `⊥`/an initial
    /// value).
    pub fn step(&mut self, step: &Step) -> Option<u32> {
        match step.action {
            Action::Mem(op) => {
                self.trace_ops += 1;
                let l = step
                    .tracking
                    .loc
                    .expect("memory operations carry a location tracking label");
                if op.is_store() {
                    self.idx[(l - 1) as usize] = self.trace_ops;
                    None
                } else {
                    Some(self.idx[(l - 1) as usize])
                }
            }
            Action::Internal(..) => {
                for &(dst, src) in &step.tracking.copies {
                    let v = match src {
                        CopySrc::Loc(l) => self.idx[(l - 1) as usize],
                        CopySrc::Invalid => 0,
                    };
                    self.idx[(dst - 1) as usize] = v;
                }
                None
            }
        }
    }
}

/// Drives a protocol, recording the run.
pub struct Runner<P: Protocol> {
    protocol: P,
    state: P::State,
    run: Run,
}

impl<P: Protocol> Runner<P> {
    /// Start a runner in the protocol's initial state.
    pub fn new(protocol: P) -> Self {
        let state = protocol.initial();
        Runner {
            protocol,
            state,
            run: Run::default(),
        }
    }

    /// The protocol being driven.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current state.
    pub fn state(&self) -> &P::State {
        &self.state
    }

    /// The run so far.
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// Consume the runner, returning the run.
    pub fn into_run(self) -> Run {
        self.run
    }

    /// The transitions enabled now.
    pub fn enabled(&self) -> Vec<Transition<P::State>> {
        self.protocol.transitions(&self.state)
    }

    /// Take a specific transition.
    pub fn take(&mut self, t: Transition<P::State>) {
        self.state = t.next;
        self.run.steps.push(Step {
            action: t.action,
            tracking: t.tracking,
        });
    }

    /// Take a uniformly random enabled transition; returns `false` if the
    /// state is a deadlock.
    pub fn step_random<R: Rng>(&mut self, rng: &mut R) -> bool {
        let ts = self.enabled();
        if ts.is_empty() {
            return false;
        }
        let i = rng.gen_range(0..ts.len());
        let t = ts.into_iter().nth(i).expect("index in range");
        self.take(t);
        true
    }

    /// Take a random enabled transition, preferring memory operations with
    /// probability `mem_bias` when any is enabled (random walks otherwise
    /// drown in internal actions).
    pub fn step_random_biased<R: Rng>(&mut self, mem_bias: f64, rng: &mut R) -> bool {
        let ts = self.enabled();
        if ts.is_empty() {
            return false;
        }
        let mem: Vec<usize> = (0..ts.len())
            .filter(|&i| matches!(ts[i].action, Action::Mem(_)))
            .collect();
        let internal: Vec<usize> = (0..ts.len())
            .filter(|&i| matches!(ts[i].action, Action::Internal(..)))
            .collect();
        let pool = if !mem.is_empty() && (internal.is_empty() || rng.gen_bool(mem_bias)) {
            mem
        } else {
            internal
        };
        let i = *pool.choose(rng).expect("pool non-empty");
        let t = ts.into_iter().nth(i).expect("index in range");
        self.take(t);
        true
    }

    /// Run `steps` random (biased) steps; stops early on deadlock.
    pub fn run_random<R: Rng>(&mut self, steps: usize, mem_bias: f64, rng: &mut R) {
        for _ in 0..steps {
            if !self.step_random_biased(mem_bias, rng) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::LocId;
    use scv_types::{BlockId, Op, Params, ProcId, Value};

    /// A two-location toy protocol: ST writes location 1, an internal
    /// action copies 1 -> 2, LD reads location 2.
    struct Toy;

    impl Protocol for Toy {
        type State = (Value, Value);

        fn name(&self) -> &'static str {
            "toy"
        }
        fn params(&self) -> Params {
            Params::new(1, 1, 2)
        }
        fn locations(&self) -> u32 {
            2
        }
        fn initial(&self) -> Self::State {
            (Value::BOTTOM, Value::BOTTOM)
        }
        fn transitions(&self, s: &Self::State) -> Vec<Transition<Self::State>> {
            let mut out = Vec::new();
            for v in self.params().values() {
                out.push(Transition {
                    action: Action::Mem(Op::store(ProcId(1), BlockId(1), v)),
                    next: (v, s.1),
                    tracking: Tracking::mem(1),
                });
            }
            out.push(Transition {
                action: Action::Internal("Copy", 0),
                next: (s.0, s.0),
                tracking: Tracking::copies(vec![(2, CopySrc::Loc(1))]),
            });
            out.push(Transition {
                action: Action::Mem(Op::load(ProcId(1), BlockId(1), s.1)),
                next: *s,
                tracking: Tracking::mem(2),
            });
            out
        }
    }

    #[test]
    fn run_records_trace() {
        let mut r = Runner::new(Toy);
        let ts = r.enabled();
        // take ST(v=1), Copy, LD
        let st = ts
            .iter()
            .find(|t| matches!(t.action, Action::Mem(op) if op.is_store() && op.value == Value(1)))
            .unwrap()
            .clone();
        r.take(st);
        let copy = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("Copy", _)))
            .unwrap();
        r.take(copy);
        let ld = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Mem(op) if op.is_load()))
            .unwrap();
        r.take(ld);
        let run = r.into_run();
        assert_eq!(run.len(), 3);
        let trace = run.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1], Op::load(ProcId(1), BlockId(1), Value(1)));
    }

    #[test]
    fn st_index_follows_copies() {
        let mut r = Runner::new(Toy);
        let mut tracker = StIndexTracker::new(2);
        // ST v=1 (trace op 1): location 1 gets index 1.
        let st = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Mem(op) if op.is_store() && op.value == Value(1)))
            .unwrap();
        r.take(st);
        tracker.step(r.run().steps.last().unwrap());
        assert_eq!(tracker.all(), &[1, 0]);
        // Copy: location 2 inherits index 1.
        let copy = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal(..)))
            .unwrap();
        r.take(copy);
        tracker.step(r.run().steps.last().unwrap());
        assert_eq!(tracker.all(), &[1, 1]);
        // Second ST v=2 (trace op 2): location 1 overwritten, 2 keeps 1.
        let st = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Mem(op) if op.is_store() && op.value == Value(2)))
            .unwrap();
        r.take(st);
        tracker.step(r.run().steps.last().unwrap());
        assert_eq!(tracker.all(), &[2, 1]);
        assert_eq!(tracker.trace_ops(), 2);
        // LD reads location 2: inherits trace op 1.
        let ld = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Mem(op) if op.is_load()))
            .unwrap();
        r.take(ld);
        let inherited = tracker.step(r.run().steps.last().unwrap());
        assert_eq!(inherited, Some(1));
    }

    #[test]
    fn invalid_copy_resets_index() {
        let mut tracker = StIndexTracker::new(1);
        tracker.step(&Step {
            action: Action::Mem(Op::store(ProcId(1), BlockId(1), Value(1))),
            tracking: Tracking::mem(1),
        });
        assert_eq!(tracker.st_index(1 as LocId), 1);
        tracker.step(&Step {
            action: Action::Internal("Inv", 0),
            tracking: Tracking::copies(vec![(1, CopySrc::Invalid)]),
        });
        assert_eq!(tracker.st_index(1), 0);
    }

    #[test]
    fn random_walks_terminate_and_record_steps() {
        // Note the toy protocol is deliberately *not* SC (its load reads a
        // potentially stale copied location in its own program order) —
        // it exists to exercise the tracking-label machinery.
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut r = Runner::new(Toy);
        r.run_random(60, 0.6, &mut rng);
        assert_eq!(r.run().len(), 60);
        let trace = r.run().trace();
        assert!(trace.len() <= 60);
        // Every trace op carries a location label; replay the tracker to
        // confirm no panics over a random run.
        let mut tracker = StIndexTracker::new(2);
        for s in &r.run().steps {
            tracker.step(s);
        }
    }
}
