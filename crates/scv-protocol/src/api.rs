//! The protocol abstraction: finite-state machines with storage locations
//! and tracking labels.

use scv_types::{BlockId, Op, Params};
use std::fmt;
use std::hash::Hash;

/// A storage-location identifier, `1..=L` (0 is never a location).
pub type LocId = u32;

/// A protocol action: a memory operation (trace alphabet `A`) or an
/// internal action (`A'`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Action {
    /// A `LD` or `ST` operation.
    Mem(Op),
    /// An internal protocol action, named for diagnostics, with an opaque
    /// payload distinguishing simultaneous variants.
    Internal(&'static str, u32),
}

impl Action {
    /// The memory operation, if this is a `LD`/`ST` action.
    pub fn op(&self) -> Option<Op> {
        match self {
            Action::Mem(op) => Some(*op),
            Action::Internal(..) => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Mem(op) => write!(f, "{op}"),
            Action::Internal(name, payload) => write!(f, "{name}({payload})"),
        }
    }
}

/// Source of a copy into a location.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CopySrc {
    /// Copied from another location (the paper's `c_l(t) = l'`).
    Loc(LocId),
    /// Reset to the predefined invalid/initial value (the paper's
    /// "predefined value indicating an invalid value").
    Invalid,
}

/// Tracking labels attached to a transition (§4.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Tracking {
    /// For `LD`/`ST` transitions: the location read or written (the
    /// tracking function `f`). Must be `Some` iff the action is `Mem`.
    pub loc: Option<LocId>,
    /// For internal transitions: the locations whose contents changed,
    /// as `(destination, source)` pairs applied **in order** (so a
    /// writeback followed by a fill within one transition behaves like two
    /// consecutive transitions). Locations not listed are unchanged
    /// (`c_l(t) = l`).
    pub copies: Vec<(LocId, CopySrc)>,
}

impl Tracking {
    /// Tracking for a `LD`/`ST` transition touching location `l`.
    pub fn mem(l: LocId) -> Self {
        Tracking {
            loc: Some(l),
            copies: Vec::new(),
        }
    }

    /// Tracking for an internal transition with the given ordered copies.
    pub fn copies(copies: Vec<(LocId, CopySrc)>) -> Self {
        Tracking { loc: None, copies }
    }

    /// Tracking for an internal transition that moves no data.
    pub fn none() -> Self {
        Tracking::default()
    }
}

/// One enabled transition out of a state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition<S> {
    /// The action taken.
    pub action: Action,
    /// The successor state.
    pub next: S,
    /// The tracking labels of this transition.
    pub tracking: Tracking,
}

/// How the serial order of STs to each block relates to the protocol's
/// behaviour — the protocol-provided hint from which the observer builds
/// its ST order generator (§4.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StOrderPolicy {
    /// Real-time ST reordering (§4.2): for every block, trace order of STs
    /// *is* the serial order. True of every protocol implemented in a real
    /// machine, per the paper.
    RealTime,
    /// The serial order of STs to block `B` is the order in which their
    /// values are copied into `B`'s *serialization location* (e.g. the
    /// memory word in Lazy Caching, where the `memory-write` order — not
    /// the real-time ST order — serializes stores).
    Serialization {
        /// `locs[b.idx()]` = serialization location of block `b`.
        locs: Vec<LocId>,
    },
}

impl StOrderPolicy {
    /// The serialization location for `block`, if the policy has one.
    pub fn serialization_loc(&self, block: BlockId) -> Option<LocId> {
        match self {
            StOrderPolicy::RealTime => None,
            StOrderPolicy::Serialization { locs } => locs.get(block.idx()).copied(),
        }
    }
}

/// A finite-state memory-system protocol with storage locations and
/// tracking labels (§2.1 + §4.1).
pub trait Protocol {
    /// The protocol state type (finite; hashable for model checking).
    type State: Clone + Eq + Hash + fmt::Debug;

    /// A short human-readable name.
    fn name(&self) -> &'static str;

    /// The size parameters `(p, b, v)`.
    fn params(&self) -> Params;

    /// The number of storage locations `L`.
    fn locations(&self) -> u32;

    /// The initial state (all locations hold `⊥`).
    fn initial(&self) -> Self::State;

    /// All transitions enabled in `state`.
    fn transitions(&self, state: &Self::State) -> Vec<Transition<Self::State>>;

    /// All transitions enabled in `state`, appended to `out`.
    ///
    /// The model checker's admission-gated expansion calls this with a
    /// per-worker scratch buffer, so enumeration costs no allocation on
    /// the hot path. Protocols enumerate by pushing anyway, so the zoo
    /// overrides this natively and derives [`Protocol::transitions`]
    /// from it; the default delegates the other way for foreign impls.
    fn transitions_into(&self, state: &Self::State, out: &mut Vec<Transition<Self::State>>) {
        out.extend(self.transitions(state));
    }

    /// The ST order policy for the observer's ST order generator.
    fn st_order_policy(&self) -> StOrderPolicy {
        StOrderPolicy::RealTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_types::{ProcId, Value};

    #[test]
    fn action_display_and_op() {
        let op = Op::store(ProcId(1), BlockId(2), Value(3));
        assert_eq!(Action::Mem(op).to_string(), "ST(P1,B2,3)");
        assert_eq!(Action::Mem(op).op(), Some(op));
        let a = Action::Internal("BusRd", 7);
        assert_eq!(a.to_string(), "BusRd(7)");
        assert_eq!(a.op(), None);
    }

    #[test]
    fn tracking_constructors() {
        assert_eq!(Tracking::mem(3).loc, Some(3));
        assert!(Tracking::mem(3).copies.is_empty());
        let t = Tracking::copies(vec![(1, CopySrc::Loc(2)), (3, CopySrc::Invalid)]);
        assert_eq!(t.loc, None);
        assert_eq!(t.copies.len(), 2);
        assert_eq!(Tracking::none(), Tracking::default());
    }

    #[test]
    fn st_order_policy_lookup() {
        let p = StOrderPolicy::RealTime;
        assert_eq!(p.serialization_loc(BlockId(1)), None);
        let p = StOrderPolicy::Serialization { locs: vec![10, 11] };
        assert_eq!(p.serialization_loc(BlockId(1)), Some(10));
        assert_eq!(p.serialization_loc(BlockId(2)), Some(11));
        assert_eq!(p.serialization_loc(BlockId(3)), None);
    }
}
