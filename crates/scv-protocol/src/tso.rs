//! A TSO-style store-buffer machine — deliberately **not** sequentially
//! consistent.
//!
//! Every processor has a FIFO store buffer: `ST` appends to the buffer,
//! `Drain` retires the oldest entry to memory, and `LD` forwards from the
//! newest matching buffer entry or reads memory. Without fences the
//! classic store-buffering litmus (both processors read 0/⊥ after both
//! stored) is reachable, so the protocol violates sequential consistency —
//! the verification pipeline must reject it, and the rejection is
//! confirmed independently by exhibiting a trace with no serial
//! reordering.
//!
//! Like Lazy Caching, the serial order of the STs that *do* serialize is
//! the drain order, so the ST order policy designates each block's memory
//! word as its serialization location.

use crate::api::{Action, CopySrc, LocId, Protocol, StOrderPolicy, Tracking, Transition};
use scv_types::{BlockId, Op, Params, ProcId, Value};

/// A buffer entry: `(block, value)`.
type Entry = Option<(u8, Value)>;

/// Protocol state: store buffers (head at index 0) plus memory.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TsoState {
    /// `buf[p.idx()*depth + i]`.
    pub buf: Vec<Entry>,
    /// Memory per block.
    pub mem: Vec<Value>,
}

/// The store-buffer protocol.
#[derive(Clone, Debug)]
pub struct StoreBufferTso {
    params: Params,
    depth: u8,
}

impl StoreBufferTso {
    /// Create a store-buffer machine with the given buffer depth.
    pub fn new(params: Params, depth: u8) -> Self {
        assert!(depth >= 1);
        StoreBufferTso { params, depth }
    }

    /// Buffer depth.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Location of slot `i` of `p`'s store buffer.
    pub fn buf_loc(&self, p: ProcId, i: u8) -> LocId {
        (p.idx() * self.depth as usize + i as usize + 1) as LocId
    }

    /// Location of the memory word for `b` (the serialization location).
    pub fn mem_loc(&self, b: BlockId) -> LocId {
        (self.params.p as usize * self.depth as usize + b.idx() + 1) as LocId
    }

    fn buf_slice<'a>(&self, s: &'a TsoState, p: ProcId) -> &'a [Entry] {
        let base = p.idx() * self.depth as usize;
        &s.buf[base..base + self.depth as usize]
    }

    fn buf_len(&self, s: &TsoState, p: ProcId) -> usize {
        self.buf_slice(s, p)
            .iter()
            .take_while(|e| e.is_some())
            .count()
    }

    /// Index of the newest buffered entry for `b` at `p`, if any
    /// (store-to-load forwarding reads the youngest matching store).
    fn newest_for(&self, s: &TsoState, p: ProcId, b: BlockId) -> Option<usize> {
        self.buf_slice(s, p)
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Some((blk, _)) if *blk == b.0))
            .map(|(i, _)| i)
            .next_back()
    }
}

impl Protocol for StoreBufferTso {
    type State = TsoState;

    fn name(&self) -> &'static str {
        "store-buffer-tso"
    }

    fn params(&self) -> Params {
        self.params
    }

    fn locations(&self) -> u32 {
        self.params.p as u32 * self.depth as u32 + self.params.b as u32
    }

    fn initial(&self) -> Self::State {
        TsoState {
            buf: vec![None; self.params.p as usize * self.depth as usize],
            mem: vec![Value::BOTTOM; self.params.b as usize],
        }
    }

    fn st_order_policy(&self) -> StOrderPolicy {
        StOrderPolicy::Serialization {
            locs: self.params.blocks().map(|b| self.mem_loc(b)).collect(),
        }
    }

    fn transitions(&self, s: &Self::State) -> Vec<Transition<Self::State>> {
        let mut out = Vec::new();
        self.transitions_into(s, &mut out);
        out
    }

    fn transitions_into(&self, s: &Self::State, out: &mut Vec<Transition<Self::State>>) {
        for p in self.params.procs() {
            let len = self.buf_len(s, p);
            // ST: append to the buffer.
            if len < self.depth as usize {
                for b in self.params.blocks() {
                    for v in self.params.values() {
                        let mut next = s.clone();
                        next.buf[p.idx() * self.depth as usize + len] = Some((b.0, v));
                        out.push(Transition {
                            action: Action::Mem(Op::store(p, b, v)),
                            next,
                            tracking: Tracking::mem(self.buf_loc(p, len as u8)),
                        });
                    }
                }
            }
            // Drain: head entry to memory, buffer shifts.
            if len > 0 {
                let (blk, v) = s.buf[p.idx() * self.depth as usize].expect("head occupied");
                let b = BlockId(blk);
                let mut next = s.clone();
                let mut copies = Vec::new();
                next.mem[b.idx()] = v;
                copies.push((self.mem_loc(b), CopySrc::Loc(self.buf_loc(p, 0))));
                for i in 0..self.depth as usize - 1 {
                    let e = s.buf[p.idx() * self.depth as usize + i + 1];
                    next.buf[p.idx() * self.depth as usize + i] = e;
                    if e.is_some() {
                        copies.push((
                            self.buf_loc(p, i as u8),
                            CopySrc::Loc(self.buf_loc(p, i as u8 + 1)),
                        ));
                    }
                }
                next.buf[p.idx() * self.depth as usize + self.depth as usize - 1] = None;
                copies.push((self.buf_loc(p, len as u8 - 1), CopySrc::Invalid));
                out.push(Transition {
                    action: Action::Internal("Drain", p.0 as u32),
                    next,
                    tracking: Tracking::copies(copies),
                });
            }
            // LD: forward from the newest matching buffer entry, else read
            // memory.
            for b in self.params.blocks() {
                match self.newest_for(s, p, b) {
                    Some(i) => {
                        let (_, v) = self.buf_slice(s, p)[i].expect("occupied");
                        out.push(Transition {
                            action: Action::Mem(Op::load(p, b, v)),
                            next: s.clone(),
                            tracking: Tracking::mem(self.buf_loc(p, i as u8)),
                        });
                    }
                    None => {
                        out.push(Transition {
                            action: Action::Mem(Op::load(p, b, s.mem[b.idx()])),
                            next: s.clone(),
                            tracking: Tracking::mem(self.mem_loc(b)),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_graph::has_serial_reordering;

    fn proto() -> StoreBufferTso {
        StoreBufferTso::new(Params::new(2, 2, 1), 2)
    }

    #[test]
    fn store_buffering_litmus_violates_sc() {
        // P1: ST x=1; LD y=⊥.  P2: ST y=1; LD x=⊥. Both loads miss the
        // buffered remote stores: the classic TSO-but-not-SC outcome.
        let mut r = Runner::new(proto());
        let x = BlockId(1);
        let y = BlockId(2);
        let take = |r: &mut Runner<StoreBufferTso>, op: Op| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| t.action.op() == Some(op))
                .unwrap_or_else(|| panic!("{op} enabled"));
            r.take(t);
        };
        take(&mut r, Op::store(ProcId(1), x, Value(1)));
        take(&mut r, Op::store(ProcId(2), y, Value(1)));
        take(&mut r, Op::load(ProcId(1), y, Value::BOTTOM));
        take(&mut r, Op::load(ProcId(2), x, Value::BOTTOM));
        let t = r.run().trace();
        assert!(!has_serial_reordering(&t), "SB litmus must violate SC: {t}");
    }

    #[test]
    fn store_to_load_forwarding_reads_newest() {
        let p = StoreBufferTso::new(Params::new(1, 1, 2), 2);
        let mut r = Runner::new(p);
        let take = |r: &mut Runner<StoreBufferTso>, op: Op| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| t.action.op() == Some(op))
                .unwrap();
            r.take(t);
        };
        take(&mut r, Op::store(ProcId(1), BlockId(1), Value(1)));
        take(&mut r, Op::store(ProcId(1), BlockId(1), Value(2)));
        // The only enabled load returns 2 (the newest buffered store).
        let loads: Vec<Op> = r
            .enabled()
            .into_iter()
            .filter_map(|t| t.action.op())
            .filter(|o| o.is_load())
            .collect();
        assert_eq!(loads, vec![Op::load(ProcId(1), BlockId(1), Value(2))]);
    }

    #[test]
    fn drain_moves_head_to_memory() {
        let p = proto();
        let mut r = Runner::new(p);
        let take = |r: &mut Runner<StoreBufferTso>, op: Op| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| t.action.op() == Some(op))
                .unwrap();
            r.take(t);
        };
        take(&mut r, Op::store(ProcId(1), BlockId(1), Value(1)));
        let drain = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("Drain", 1)))
            .unwrap();
        r.take(drain);
        assert_eq!(r.state().mem[0], Value(1));
        assert_eq!(r.state().buf[0], None);
    }

    #[test]
    fn single_processor_tso_is_sc() {
        // With one processor, store forwarding makes TSO equal SC.
        let mut rng = SmallRng::seed_from_u64(51);
        for _ in 0..10 {
            let mut r = Runner::new(StoreBufferTso::new(Params::new(1, 2, 2), 2));
            r.run_random(40, 0.6, &mut rng);
            let t = r.run().trace();
            assert!(has_serial_reordering(&t), "{t}");
        }
    }

    #[test]
    fn buffers_respect_depth() {
        let p = proto();
        let mut r = Runner::new(p);
        let take_any_store = |r: &mut Runner<StoreBufferTso>| -> bool {
            let t = r.enabled().into_iter().find(
                |t| matches!(t.action, Action::Mem(op) if op.is_store() && op.proc == ProcId(1)),
            );
            match t {
                Some(t) => {
                    r.take(t);
                    true
                }
                None => false,
            }
        };
        assert!(take_any_store(&mut r));
        assert!(take_any_store(&mut r));
        assert!(!take_any_store(&mut r), "depth-2 buffer must be full");
    }
}
