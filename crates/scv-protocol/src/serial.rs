//! Serial memory: the trivially sequentially consistent baseline.
//!
//! Every operation acts instantaneously on a single shared memory; the
//! locations are exactly the `b` memory words.

use crate::api::{Action, Protocol, Tracking, Transition};
use scv_types::{Op, Params, Value};

/// Atomic serial memory with `p` processors, `b` blocks, `v` values.
#[derive(Clone, Debug)]
pub struct SerialMemory {
    params: Params,
}

impl SerialMemory {
    /// Create a serial memory protocol.
    pub fn new(params: Params) -> Self {
        SerialMemory { params }
    }
}

impl Protocol for SerialMemory {
    /// One value per block.
    type State = Vec<Value>;

    fn name(&self) -> &'static str {
        "serial-memory"
    }

    fn params(&self) -> Params {
        self.params
    }

    fn locations(&self) -> u32 {
        self.params.b as u32
    }

    fn initial(&self) -> Self::State {
        vec![Value::BOTTOM; self.params.b as usize]
    }

    fn transitions(&self, state: &Self::State) -> Vec<Transition<Self::State>> {
        let mut out = Vec::new();
        self.transitions_into(state, &mut out);
        out
    }

    fn transitions_into(&self, state: &Self::State, out: &mut Vec<Transition<Self::State>>) {
        for p in self.params.procs() {
            for b in self.params.blocks() {
                let loc = (b.idx() + 1) as u32;
                // LD returns the current contents.
                out.push(Transition {
                    action: Action::Mem(Op::load(p, b, state[b.idx()])),
                    next: state.clone(),
                    tracking: Tracking::mem(loc),
                });
                // ST of any value.
                for v in self.params.values() {
                    let mut next = state.clone();
                    next[b.idx()] = v;
                    out.push(Transition {
                        action: Action::Mem(Op::store(p, b, v)),
                        next,
                        tracking: Tracking::mem(loc),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_random_trace_is_serial() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10 {
            let mut r = Runner::new(SerialMemory::new(Params::new(2, 2, 2)));
            r.run_random(40, 1.0, &mut rng);
            let t = r.run().trace();
            assert!(t.is_serial(), "serial memory produced non-serial trace {t}");
        }
    }

    #[test]
    fn all_ops_enabled_from_initial() {
        let p = SerialMemory::new(Params::new(2, 2, 3));
        let ts = p.transitions(&p.initial());
        // 2 procs x 2 blocks x (1 load + 3 stores) = 16.
        assert_eq!(ts.len(), 16);
        // Initial loads return ⊥.
        assert!(ts
            .iter()
            .any(|t| matches!(t.action, Action::Mem(op) if op.is_load() && op.value.is_bottom())));
    }

    #[test]
    fn tracking_labels_name_memory_words() {
        let p = SerialMemory::new(Params::new(1, 3, 1));
        for t in p.transitions(&p.initial()) {
            let Action::Mem(op) = t.action else {
                panic!("no internals")
            };
            assert_eq!(t.tracking.loc, Some((op.block.idx() + 1) as u32));
        }
    }
}
