//! Litmus tests: the standard multiprocessor memory-model probes, with a
//! directed-execution engine that asks whether a protocol can realize a
//! given outcome trace.
//!
//! A [`Litmus`] is a target trace plus its SC verdict; [`realizable`]
//! searches a protocol's runs (interleaving internal actions freely) for
//! one whose memory operations equal the target. Combined with the SC
//! verdict this classifies protocols empirically: a protocol that realizes
//! a `forbidden_by_sc` litmus is not sequentially consistent — the same
//! conclusion the observer/checker pipeline reaches, derived from first
//! principles.

use crate::api::{Action, Protocol};
use crate::runner::{Run, Step};
use scv_types::{BlockId, Op, ProcId, Trace, Value};
use std::collections::HashSet;
use std::hash::Hash;

/// A named litmus test: a target trace and whether SC permits it.
#[derive(Clone, Debug)]
pub struct Litmus {
    /// Conventional name (SB, MP, LB, CoRR, IRIW, ...).
    pub name: &'static str,
    /// The outcome trace, in the real-time order the programs issue it.
    pub trace: Trace,
    /// Does sequential consistency permit this outcome?
    pub sc_allows: bool,
}

impl Litmus {
    /// The smallest protocol parameters that accommodate the test —
    /// searching a larger configuration only slows [`realizable`] down.
    pub fn min_params(&self) -> scv_types::Params {
        self.trace.min_params()
    }
}

fn st(p: u8, b: u8, v: u8) -> Op {
    Op::store(ProcId(p), BlockId(b), Value(v))
}
fn ld(p: u8, b: u8, v: u8) -> Op {
    Op::load(ProcId(p), BlockId(b), Value(v))
}
fn ldb(p: u8, b: u8) -> Op {
    Op::load(ProcId(p), BlockId(b), Value::BOTTOM)
}

/// Store buffering: P1: ST x; LD y.  P2: ST y; LD x. Both loads stale.
/// Forbidden under SC; the signature TSO relaxation.
pub fn store_buffering() -> Litmus {
    Litmus {
        name: "SB",
        trace: Trace::from_ops([st(1, 1, 1), st(2, 2, 1), ldb(1, 2), ldb(2, 1)]),
        sc_allows: false,
    }
}

/// Message passing: P1: ST x; ST y.  P2: LD y (new); LD x (stale).
/// Forbidden under SC (and under TSO; allowed by weaker models).
pub fn message_passing() -> Litmus {
    Litmus {
        name: "MP",
        trace: Trace::from_ops([st(1, 1, 1), st(1, 2, 1), ld(2, 2, 1), ldb(2, 1)]),
        sc_allows: false,
    }
}

/// Message passing, the SC-allowed outcome: the second load sees the data.
pub fn message_passing_ok() -> Litmus {
    Litmus {
        name: "MP+ok",
        trace: Trace::from_ops([st(1, 1, 1), st(1, 2, 1), ld(2, 2, 1), ld(2, 1, 1)]),
        sc_allows: true,
    }
}

/// Coherence of reads: P2 reads the two stores to one location in the
/// opposite of their (only possible) coherence order. Forbidden under SC
/// and under any coherent model.
pub fn corr() -> Litmus {
    Litmus {
        name: "CoRR",
        trace: Trace::from_ops([st(1, 1, 1), st(1, 1, 2), ld(2, 1, 2), ld(2, 1, 1)]),
        sc_allows: false,
    }
}

/// Read own write: a processor reads the value it just stored.
pub fn read_own_write() -> Litmus {
    Litmus {
        name: "RoW",
        trace: Trace::from_ops([st(1, 1, 1), ld(1, 1, 1)]),
        sc_allows: true,
    }
}

/// Independent reads of independent writes: P3 and P4 observe the two
/// independent stores in opposite orders. Forbidden under SC; the probe
/// separating SC/TSO from weaker models.
pub fn iriw() -> Litmus {
    Litmus {
        name: "IRIW",
        trace: Trace::from_ops([
            st(1, 1, 1),
            st(2, 2, 1),
            ld(3, 1, 1),
            ldb(3, 2),
            ld(4, 2, 1),
            ldb(4, 1),
        ]),
        sc_allows: false,
    }
}

/// The standard battery.
pub fn all() -> Vec<Litmus> {
    vec![
        store_buffering(),
        message_passing(),
        message_passing_ok(),
        corr(),
        read_own_write(),
        iriw(),
    ]
}

/// Can `protocol` produce a run whose trace equals `target`? Searches
/// interleavings with memoization on (protocol state, operations matched),
/// bounding the internal actions taken between consecutive memory
/// operations by `internal_budget` (internal actions reachable within the
/// budget are explored exhaustively).
pub fn realizable<P: Protocol>(protocol: &P, target: &Trace, internal_budget: usize) -> bool {
    fn dfs<P: Protocol>(
        protocol: &P,
        state: P::State,
        target: &Trace,
        matched: usize,
        fuel: usize,
        budget: usize,
        seen: &mut HashSet<(P::State, usize, usize)>,
    ) -> bool
    where
        P::State: Hash + Eq + Clone,
    {
        if matched == target.len() {
            return true;
        }
        if !seen.insert((state.clone(), matched, fuel)) {
            return false;
        }
        for t in protocol.transitions(&state) {
            match t.action {
                Action::Mem(op) => {
                    if op == target[matched]
                        && dfs(protocol, t.next, target, matched + 1, budget, budget, seen)
                    {
                        return true;
                    }
                }
                Action::Internal(..) => {
                    if fuel > 0 && dfs(protocol, t.next, target, matched, fuel - 1, budget, seen) {
                        return true;
                    }
                }
            }
        }
        false
    }
    let mut seen = HashSet::new();
    dfs(
        protocol,
        protocol.initial(),
        target,
        0,
        internal_budget,
        internal_budget,
        &mut seen,
    )
}

/// Like [`realizable`], but returns the witnessing run itself (with
/// tracking labels), so the realization can be replayed through the
/// observer/checker pipeline or shrunk into a regression case.
pub fn realization<P: Protocol>(
    protocol: &P,
    target: &Trace,
    internal_budget: usize,
) -> Option<Run> {
    #[allow(clippy::too_many_arguments)]
    fn dfs<P: Protocol>(
        protocol: &P,
        state: P::State,
        target: &Trace,
        matched: usize,
        fuel: usize,
        budget: usize,
        seen: &mut HashSet<(P::State, usize, usize)>,
        steps: &mut Vec<Step>,
    ) -> bool
    where
        P::State: Hash + Eq + Clone,
    {
        if matched == target.len() {
            return true;
        }
        if !seen.insert((state.clone(), matched, fuel)) {
            return false;
        }
        for t in protocol.transitions(&state) {
            let (advance, next_fuel) = match t.action {
                Action::Mem(op) => {
                    if op != target[matched] {
                        continue;
                    }
                    (1, budget)
                }
                Action::Internal(..) => {
                    if fuel == 0 {
                        continue;
                    }
                    (0, fuel - 1)
                }
            };
            steps.push(Step {
                action: t.action,
                tracking: t.tracking.clone(),
            });
            if dfs(
                protocol,
                t.next,
                target,
                matched + advance,
                next_fuel,
                budget,
                seen,
                steps,
            ) {
                return true;
            }
            steps.pop();
        }
        false
    }
    let mut seen = HashSet::new();
    let mut steps = Vec::new();
    dfs(
        protocol,
        protocol.initial(),
        target,
        0,
        internal_budget,
        internal_budget,
        &mut seen,
        &mut steps,
    )
    .then_some(Run { steps })
}

/// Run the battery against a protocol: returns, per litmus, whether the
/// outcome is realizable. A protocol is *observationally SC on the
/// battery* iff it realizes no `sc_allows == false` litmus.
pub fn classify<P: Protocol>(protocol: &P, internal_budget: usize) -> Vec<(Litmus, bool)> {
    all()
        .into_iter()
        .map(|l| {
            let hit = realizable(protocol, &l.trace, internal_budget);
            (l, hit)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MesiProtocol, MsiProtocol, SerialMemory, StoreBufferTso};
    use scv_graph::has_serial_reordering;

    #[test]
    fn battery_verdicts_match_direct_search() {
        // The `sc_allows` annotations must agree with the ground-truth
        // serial-reordering search.
        for l in all() {
            assert_eq!(
                has_serial_reordering(&l.trace),
                l.sc_allows,
                "annotation wrong for {}",
                l.name
            );
        }
    }

    #[test]
    fn serial_memory_realizes_only_sc_outcomes() {
        for l in all() {
            let p = SerialMemory::new(l.min_params());
            let hit = realizable(&p, &l.trace, 2);
            assert_eq!(
                hit, l.sc_allows,
                "serial memory realizes exactly the SC outcomes ({})",
                l.name
            );
        }
    }

    #[test]
    fn msi_realizes_only_sc_outcomes() {
        for l in all() {
            let p = MsiProtocol::new(l.min_params());
            let hit = realizable(&p, &l.trace, 4);
            if l.sc_allows {
                assert!(hit, "MSI failed to realize allowed {}", l.name);
            } else {
                assert!(!hit, "MSI realized forbidden {}", l.name);
            }
        }
    }

    #[test]
    fn mesi_realizes_no_forbidden_outcomes() {
        for l in all() {
            if l.sc_allows {
                continue;
            }
            let p = MesiProtocol::new(l.min_params());
            assert!(
                !realizable(&p, &l.trace, 4),
                "MESI realized forbidden {}",
                l.name
            );
        }
    }

    #[test]
    fn tso_realizes_store_buffering_but_not_mp() {
        let sb = store_buffering();
        let p = StoreBufferTso::new(sb.min_params(), 2);
        assert!(realizable(&p, &sb.trace, 4), "TSO must realize SB");
        // TSO preserves store order and load order: MP stays forbidden.
        let mp = message_passing();
        let p = StoreBufferTso::new(mp.min_params(), 2);
        assert!(!realizable(&p, &mp.trace, 6));
        // And the coherent-read probe stays forbidden too.
        let c = corr();
        let p = StoreBufferTso::new(c.min_params(), 2);
        assert!(!realizable(&p, &c.trace, 6));
        // IRIW is forbidden under TSO as well (single memory order).
        let i = iriw();
        let p = StoreBufferTso::new(i.min_params(), 2);
        assert!(!realizable(&p, &i.trace, 6));
    }

    #[test]
    fn buggy_msi_realizes_message_passing_violation() {
        let mp = message_passing();
        let p = MsiProtocol::buggy(mp.min_params());
        assert!(
            realizable(&p, &mp.trace, 6),
            "the lost invalidation must expose the MP violation"
        );
    }

    #[test]
    fn buggy_mesi_realizes_message_passing_violation() {
        let mp = message_passing();
        let p = MesiProtocol::buggy(mp.min_params());
        assert!(realizable(&p, &mp.trace, 8));
    }

    #[test]
    fn realization_returns_the_witnessing_run() {
        // The run's trace must be exactly the target, and realization must
        // agree with the boolean probe on both outcomes.
        let mp = message_passing();
        let p = MsiProtocol::buggy(mp.min_params());
        let run = realization(&p, &mp.trace, 6).expect("buggy MSI realizes MP");
        assert_eq!(run.trace(), mp.trace);
        let p_ok = MsiProtocol::new(mp.min_params());
        assert!(realization(&p_ok, &mp.trace, 6).is_none());
        assert!(!realizable(&p_ok, &mp.trace, 6));
    }

    #[test]
    fn realizable_respects_trace_order() {
        // The target is matched as an exact trace, not a bag of ops.
        let p = SerialMemory::new(scv_types::Params::new(2, 1, 2));
        let fwd = Trace::from_ops([st(1, 1, 1), ld(2, 1, 1)]);
        let bwd = Trace::from_ops([ld(2, 1, 1), st(1, 1, 1)]);
        assert!(realizable(&p, &fwd, 2));
        assert!(
            !realizable(&p, &bwd, 2),
            "cannot read 1 before it is stored"
        );
    }

    #[test]
    fn min_params_cover_each_litmus() {
        for l in all() {
            assert!(l.trace.in_bounds(&l.min_params()), "{}", l.name);
        }
        assert_eq!(iriw().min_params().p, 4);
        assert_eq!(store_buffering().min_params().p, 2);
    }
}
