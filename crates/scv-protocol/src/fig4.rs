//! The Get-Shared cache protocol of paper Figure 4.
//!
//! Each processor has a small set of cache slots; a `ST` writes a view of a
//! block into one of its slots, `Get-Shared` copies a block's view from
//! another processor's slot, and a `LD` reads any of the processor's own
//! slots. Each processor holds at most one view per block.
//!
//! The protocol never invalidates remote copies, so with three or more
//! processors it is **not** sequentially consistent (a processor can read a
//! fresh view and then fetch a stale view of the same block from a third
//! processor) — making it a useful negative example in addition to its
//! paper role of illustrating tracking labels and ST indexes.

use crate::api::{Action, CopySrc, LocId, Protocol, Tracking, Transition};
use scv_types::{BlockId, Op, Params, ProcId, Value};

/// One cache slot: empty, or a view `(block, value)`.
type Slot = Option<(u8, Value)>;

/// The Figure 4 protocol: `p` processors with `slots` cache slots each.
#[derive(Clone, Debug)]
pub struct Fig4Protocol {
    params: Params,
    slots: u8,
}

impl Fig4Protocol {
    /// A protocol with the given parameters and per-processor slot count.
    pub fn new(params: Params, slots: u8) -> Self {
        assert!(slots >= 1);
        Fig4Protocol { params, slots }
    }

    /// The exact configuration of paper Figure 4: two processors with two
    /// slots each, three blocks, three values.
    pub fn paper() -> Self {
        Fig4Protocol::new(Params::new(2, 3, 3), 2)
    }

    /// The location id of processor `p`'s slot `i` (0-based slot).
    pub fn loc(&self, p: ProcId, i: u8) -> LocId {
        (p.idx() as u32) * self.slots as u32 + i as u32 + 1
    }

    /// Candidate target slots for installing a view of `block` at `p`:
    /// the slot already holding the block if any (a processor keeps at
    /// most one view per block), otherwise every slot.
    fn targets(&self, state: &[Slot], p: ProcId, block: BlockId) -> Vec<u8> {
        let base = p.idx() * self.slots as usize;
        let mine = &state[base..base + self.slots as usize];
        if let Some(i) = mine
            .iter()
            .position(|s| matches!(s, Some((b, _)) if *b == block.0))
        {
            return vec![i as u8];
        }
        (0..self.slots).collect()
    }
}

impl Protocol for Fig4Protocol {
    /// All slots, processor-major.
    type State = Vec<Slot>;

    fn name(&self) -> &'static str {
        "fig4-get-shared"
    }

    fn params(&self) -> Params {
        self.params
    }

    fn locations(&self) -> u32 {
        self.params.p as u32 * self.slots as u32
    }

    fn initial(&self) -> Self::State {
        vec![None; (self.params.p * self.slots) as usize]
    }

    fn transitions(&self, state: &Self::State) -> Vec<Transition<Self::State>> {
        let mut out = Vec::new();
        self.transitions_into(state, &mut out);
        out
    }

    fn transitions_into(&self, state: &Self::State, out: &mut Vec<Transition<Self::State>>) {
        for p in self.params.procs() {
            let base = p.idx() * self.slots as usize;
            // LD from any of p's populated slots.
            for i in 0..self.slots {
                if let Some((b, v)) = state[base + i as usize] {
                    out.push(Transition {
                        action: Action::Mem(Op::load(p, BlockId(b), v)),
                        next: state.clone(),
                        tracking: Tracking::mem(self.loc(p, i)),
                    });
                }
            }
            // ST into a candidate slot.
            for b in self.params.blocks() {
                for v in self.params.values() {
                    for i in self.targets(state, p, b) {
                        let mut next = state.clone();
                        next[base + i as usize] = Some((b.0, v));
                        out.push(Transition {
                            action: Action::Mem(Op::store(p, b, v)),
                            next,
                            tracking: Tracking::mem(self.loc(p, i)),
                        });
                    }
                }
            }
            // Get-Shared: copy a view of block b from another processor.
            for b in self.params.blocks() {
                for q in self.params.procs() {
                    if q == p {
                        continue;
                    }
                    let qbase = q.idx() * self.slots as usize;
                    for j in 0..self.slots {
                        let Some((qb, qv)) = state[qbase + j as usize] else {
                            continue;
                        };
                        if qb != b.0 {
                            continue;
                        }
                        for i in self.targets(state, p, b) {
                            let mut next = state.clone();
                            next[base + i as usize] = Some((b.0, qv));
                            out.push(Transition {
                                action: Action::Internal(
                                    "Get-Shared",
                                    (p.0 as u32) << 8 | b.0 as u32,
                                ),
                                next,
                                tracking: Tracking::copies(vec![(
                                    self.loc(p, i),
                                    CopySrc::Loc(self.loc(q, j)),
                                )]),
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Runner, StIndexTracker};

    /// Reproduce the exact run of paper Figure 4 and its ST-index table.
    #[test]
    fn figure4_run_and_st_indexes() {
        let proto = Fig4Protocol::paper();
        let mut r = Runner::new(proto);
        let mut tracker = StIndexTracker::new(r.protocol().locations());

        // ST(P1,B1,1) into location 1.
        let t = r
            .enabled()
            .into_iter()
            .find(|t| {
                matches!(t.action, Action::Mem(op)
                    if op.is_store() && op.proc == ProcId(1) && op.block == BlockId(1)
                        && op.value == Value(1))
                    && t.tracking.loc == Some(1)
            })
            .expect("ST(P1,B1,1) @ loc 1");
        r.take(t);
        tracker.step(r.run().steps.last().unwrap());

        // ST(P2,B2,2) into location 4.
        let t = r
            .enabled()
            .into_iter()
            .find(|t| {
                matches!(t.action, Action::Mem(op)
                    if op.is_store() && op.proc == ProcId(2) && op.block == BlockId(2)
                        && op.value == Value(2))
                    && t.tracking.loc == Some(4)
            })
            .expect("ST(P2,B2,2) @ loc 4");
        r.take(t);
        tracker.step(r.run().steps.last().unwrap());

        // Get-Shared(P2,B1): copy location 1 -> location 3.
        let t = r
            .enabled()
            .into_iter()
            .find(|t| {
                matches!(t.action, Action::Internal("Get-Shared", pb) if pb == (2 << 8) | 1)
                    && t.tracking.copies == vec![(3, CopySrc::Loc(1))]
            })
            .expect("Get-Shared(P2,B1) loc1->loc3");
        r.take(t);
        tracker.step(r.run().steps.last().unwrap());

        // ST(P1,B3,3) into location 1 (overwriting B1's view).
        let t = r
            .enabled()
            .into_iter()
            .find(|t| {
                matches!(t.action, Action::Mem(op)
                    if op.is_store() && op.proc == ProcId(1) && op.block == BlockId(3)
                        && op.value == Value(3))
                    && t.tracking.loc == Some(1)
            })
            .expect("ST(P1,B3,3) @ loc 1");
        r.take(t);
        tracker.step(r.run().steps.last().unwrap());

        // Figure 4(c): ST-index(R,1) = 3, ST-index(R,2) = 0,
        // ST-index(R,3) = 1, ST-index(R,4) = 2.
        assert_eq!(tracker.all(), &[3, 0, 1, 2]);

        // Figure 4(b) final state.
        let s = r.state();
        assert_eq!(s[0], Some((3, Value(3)))); // loc 1: B3:3
        assert_eq!(s[1], None); // loc 2: ⊥
        assert_eq!(s[2], Some((1, Value(1)))); // loc 3: B1:1
        assert_eq!(s[3], Some((2, Value(2)))); // loc 4: B2:2
    }

    #[test]
    fn one_view_per_block_per_processor() {
        let proto = Fig4Protocol::new(Params::new(2, 2, 2), 2);
        let mut state = proto.initial();
        state[0] = Some((1, Value(1)));
        // Installing B1 at P1 again must target slot 0 only.
        assert_eq!(proto.targets(&state, ProcId(1), BlockId(1)), vec![0]);
        // A different block may go anywhere.
        assert_eq!(proto.targets(&state, ProcId(1), BlockId(2)), vec![0, 1]);
    }

    #[test]
    fn loads_only_from_own_cache() {
        let proto = Fig4Protocol::new(Params::new(2, 2, 2), 1);
        let mut state = proto.initial();
        state[0] = Some((1, Value(2))); // P1 holds B1:2
        let ts = proto.transitions(&state);
        let loads: Vec<Op> = ts
            .iter()
            .filter_map(|t| t.action.op())
            .filter(|o| o.is_load())
            .collect();
        assert_eq!(loads, vec![Op::load(ProcId(1), BlockId(1), Value(2))]);
    }

    #[test]
    fn three_processors_admit_non_sc_trace() {
        // P1 stores 1; P3 Get-Shares the stale view; P1 stores 2; P2
        // Get-Shares the fresh view, reads 2, then Get-Shares the stale
        // view from P3 and reads 1 — not SC.
        let proto = Fig4Protocol::new(Params::new(3, 1, 2), 1);
        let mut r = Runner::new(proto);
        let pick_store = |r: &Runner<Fig4Protocol>, v: u8| {
            r.enabled()
                .into_iter()
                .find(|t| {
                    matches!(t.action, Action::Mem(op)
                        if op.is_store() && op.proc == ProcId(1) && op.value == Value(v))
                })
                .unwrap()
        };
        let pick_gs =
            |r: &Runner<Fig4Protocol>, p: u8, src_loc: LocId| {
                r.enabled()
                .into_iter()
                .find(|t| {
                    matches!(t.action, Action::Internal("Get-Shared", pb) if (pb >> 8) == p as u32)
                        && t.tracking.copies.iter().any(|(_, s)| *s == CopySrc::Loc(src_loc))
                })
                .unwrap()
            };
        let pick_load = |r: &Runner<Fig4Protocol>, p: u8, v: u8| {
            r.enabled()
                .into_iter()
                .find(|t| {
                    matches!(t.action, Action::Mem(op)
                        if op.is_load() && op.proc == ProcId(p) && op.value == Value(v))
                })
                .unwrap()
        };
        let t = pick_store(&r, 1);
        r.take(t); // ST(P1,B1,1) @ loc 1
        let t = pick_gs(&r, 3, 1);
        r.take(t); // P3 grabs stale 1
        let t = pick_store(&r, 2);
        r.take(t); // ST(P1,B1,2)
        let t = pick_gs(&r, 2, 1);
        r.take(t); // P2 grabs fresh 2
        let t = pick_load(&r, 2, 2);
        r.take(t); // P2 reads 2
        let t = pick_gs(&r, 2, 3);
        r.take(t); // P2 grabs stale 1 from P3
        let t = pick_load(&r, 2, 1);
        r.take(t); // P2 reads 1 after 2!
        let trace = r.run().trace();
        assert!(!scv_graph_has_serial_reordering(&trace));
    }

    // Local shim so the dev-dependency is explicit at the call site.
    fn scv_graph_has_serial_reordering(t: &scv_types::Trace) -> bool {
        scv_graph::has_serial_reordering(t)
    }
}
