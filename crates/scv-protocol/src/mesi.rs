//! A MESI cache-coherence protocol (MSI plus the Exclusive state).
//!
//! The Exclusive state is granted when a BusRd finds no other cached copy;
//! the holder may then store *silently* — without any bus transaction —
//! by upgrading E→M locally. Silent upgrades are precisely the kind of
//! optimization that makes coherence protocols error-prone: the store is
//! never observed on the bus, yet it must still serialize correctly. MESI
//! retains the real-time ST reordering property (only one cache can be in
//! E/M, so stores to a block still occur in a single per-block order), so
//! the real-time ST order generator applies and the protocol verifies.
//!
//! [`MesiProtocol::buggy`] injects a realistic fault: the directory of
//! sharers consulted by BusRd is stale — a concurrent silent E→M upgrade
//! is missed and a *second* cache is granted E for the same block,
//! breaking the single-writer invariant.

use crate::api::{Action, CopySrc, LocId, Protocol, Tracking, Transition};
use scv_types::{BlockId, Op, Params, ProcId, Value};

/// Cache line state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MesiLine {
    /// Modified: exclusive, dirty.
    M,
    /// Exclusive: sole copy, clean — may upgrade to M silently.
    E,
    /// Shared: clean, read-only.
    S,
    /// Invalid.
    I,
}

/// Protocol state: one line per (processor, block) plus memory.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MesiState {
    /// `lines[p.idx()*b + blk.idx()]` = (state, cached value).
    pub lines: Vec<(MesiLine, Value)>,
    /// Memory contents per block.
    pub mem: Vec<Value>,
}

/// The MESI protocol (optionally fault-injected).
#[derive(Clone, Debug)]
pub struct MesiProtocol {
    params: Params,
    buggy: bool,
}

impl MesiProtocol {
    /// A correct MESI protocol.
    pub fn new(params: Params) -> Self {
        MesiProtocol {
            params,
            buggy: false,
        }
    }

    /// MESI where BusRd can miss a concurrent M holder and wrongly grant E
    /// (double-exclusivity bug).
    pub fn buggy(params: Params) -> Self {
        MesiProtocol {
            params,
            buggy: true,
        }
    }

    /// Is this the fault-injected variant?
    pub fn is_buggy(&self) -> bool {
        self.buggy
    }

    /// Location id of processor `p`'s cache line for `b`.
    pub fn cache_loc(&self, p: ProcId, b: BlockId) -> LocId {
        (p.idx() * self.params.b as usize + b.idx() + 1) as LocId
    }

    /// Location id of the memory word for `b`.
    pub fn mem_loc(&self, b: BlockId) -> LocId {
        (self.params.p as usize * self.params.b as usize + b.idx() + 1) as LocId
    }

    fn line(&self, s: &MesiState, p: ProcId, b: BlockId) -> (MesiLine, Value) {
        s.lines[p.idx() * self.params.b as usize + b.idx()]
    }

    fn line_mut<'a>(
        &self,
        s: &'a mut MesiState,
        p: ProcId,
        b: BlockId,
    ) -> &'a mut (MesiLine, Value) {
        &mut s.lines[p.idx() * self.params.b as usize + b.idx()]
    }

    fn holders(&self, s: &MesiState, b: BlockId, except: ProcId) -> Vec<(ProcId, MesiLine)> {
        self.params
            .procs()
            .filter(|&q| q != except)
            .map(|q| (q, self.line(s, q, b).0))
            .filter(|(_, l)| *l != MesiLine::I)
            .collect()
    }
}

impl Protocol for MesiProtocol {
    type State = MesiState;

    fn name(&self) -> &'static str {
        if self.buggy {
            "mesi-buggy"
        } else {
            "mesi"
        }
    }

    fn params(&self) -> Params {
        self.params
    }

    fn locations(&self) -> u32 {
        (self.params.p as u32 + 1) * self.params.b as u32
    }

    fn initial(&self) -> Self::State {
        MesiState {
            lines: vec![(MesiLine::I, Value::BOTTOM); (self.params.p * self.params.b) as usize],
            mem: vec![Value::BOTTOM; self.params.b as usize],
        }
    }

    fn transitions(&self, s: &Self::State) -> Vec<Transition<Self::State>> {
        let mut out = Vec::new();
        self.transitions_into(s, &mut out);
        out
    }

    fn transitions_into(&self, s: &Self::State, out: &mut Vec<Transition<Self::State>>) {
        for p in self.params.procs() {
            for b in self.params.blocks() {
                let (line, val) = self.line(s, p, b);
                // Loads hit in M/E/S.
                if line != MesiLine::I {
                    out.push(Transition {
                        action: Action::Mem(Op::load(p, b, val)),
                        next: s.clone(),
                        tracking: Tracking::mem(self.cache_loc(p, b)),
                    });
                }
                // Stores hit in M; E upgrades silently first.
                if line == MesiLine::M {
                    for v in self.params.values() {
                        let mut next = s.clone();
                        self.line_mut(&mut next, p, b).1 = v;
                        out.push(Transition {
                            action: Action::Mem(Op::store(p, b, v)),
                            next,
                            tracking: Tracking::mem(self.cache_loc(p, b)),
                        });
                    }
                }
                if line == MesiLine::E {
                    // Silent E -> M upgrade: no bus transaction, no copies.
                    let mut next = s.clone();
                    self.line_mut(&mut next, p, b).0 = MesiLine::M;
                    out.push(Transition {
                        action: Action::Internal("SilentUpgrade", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::none(),
                    });
                }
                match line {
                    MesiLine::M => {
                        // Writeback eviction.
                        let mut next = s.clone();
                        next.mem[b.idx()] = val;
                        self.line_mut(&mut next, p, b).0 = MesiLine::I;
                        out.push(Transition {
                            action: Action::Internal("EvictM", self.cache_loc(p, b)),
                            next,
                            tracking: Tracking::copies(vec![
                                (self.mem_loc(b), CopySrc::Loc(self.cache_loc(p, b))),
                                (self.cache_loc(p, b), CopySrc::Invalid),
                            ]),
                        });
                    }
                    MesiLine::E | MesiLine::S => {
                        // Clean lines evict silently.
                        let mut next = s.clone();
                        self.line_mut(&mut next, p, b).0 = MesiLine::I;
                        out.push(Transition {
                            action: Action::Internal("Evict", self.cache_loc(p, b)),
                            next,
                            tracking: Tracking::copies(vec![(
                                self.cache_loc(p, b),
                                CopySrc::Invalid,
                            )]),
                        });
                        if line == MesiLine::S {
                            // BusUpgr from S: invalidate other sharers.
                            let mut next = s.clone();
                            let mut copies = Vec::new();
                            for (q, l) in self.holders(s, b, p) {
                                if l == MesiLine::S {
                                    self.line_mut(&mut next, q, b).0 = MesiLine::I;
                                    copies.push((self.cache_loc(q, b), CopySrc::Invalid));
                                }
                            }
                            self.line_mut(&mut next, p, b).0 = MesiLine::M;
                            out.push(Transition {
                                action: Action::Internal("BusUpgr", self.cache_loc(p, b)),
                                next,
                                tracking: Tracking::copies(copies),
                            });
                        }
                    }
                    MesiLine::I => {
                        let holders = self.holders(s, b, p);
                        // The buggy variant's stale snoop: an M holder that
                        // got there via a silent upgrade is invisible, so
                        // the read is served (stale) from memory and E is
                        // wrongly granted.
                        let visible: Vec<(ProcId, MesiLine)> = if self.buggy {
                            holders
                                .iter()
                                .copied()
                                .filter(|(_, l)| *l != MesiLine::M)
                                .collect()
                        } else {
                            holders.clone()
                        };
                        // BusRd: E if no (visible) copies, else S.
                        let mut next = s.clone();
                        let mut copies = Vec::new();
                        let owner = holders
                            .iter()
                            .find(|(_, l)| *l == MesiLine::M)
                            .map(|(q, _)| *q)
                            .filter(|_| !self.buggy);
                        let granted = if visible.is_empty() {
                            MesiLine::E
                        } else {
                            MesiLine::S
                        };
                        let fill = match owner {
                            Some(q) => {
                                let qv = self.line(s, q, b).1;
                                copies.push((self.mem_loc(b), CopySrc::Loc(self.cache_loc(q, b))));
                                next.mem[b.idx()] = qv;
                                self.line_mut(&mut next, q, b).0 = MesiLine::S;
                                copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                                qv
                            }
                            None => {
                                copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                                s.mem[b.idx()]
                            }
                        };
                        // Downgrade a visible E holder to S.
                        for (q, l) in &visible {
                            if *l == MesiLine::E {
                                self.line_mut(&mut next, *q, b).0 = MesiLine::S;
                            }
                        }
                        let granted = if owner.is_some() {
                            MesiLine::S
                        } else {
                            granted
                        };
                        *self.line_mut(&mut next, p, b) = (granted, fill);
                        out.push(Transition {
                            action: Action::Internal("BusRd", self.cache_loc(p, b)),
                            next,
                            tracking: Tracking::copies(copies),
                        });
                        // BusRdX: take M, invalidating everyone.
                        let mut next = s.clone();
                        let mut copies = Vec::new();
                        let fill = match holders.iter().find(|(_, l)| *l == MesiLine::M) {
                            Some((q, _)) if !self.buggy => {
                                let qv = self.line(s, *q, b).1;
                                copies.push((
                                    self.cache_loc(p, b),
                                    CopySrc::Loc(self.cache_loc(*q, b)),
                                ));
                                self.line_mut(&mut next, *q, b).0 = MesiLine::I;
                                copies.push((self.cache_loc(*q, b), CopySrc::Invalid));
                                qv
                            }
                            _ => {
                                copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                                s.mem[b.idx()]
                            }
                        };
                        for (q, l) in &holders {
                            if (*l != MesiLine::M || !self.buggy)
                                && self.line(&next, *q, b).0 != MesiLine::I
                            {
                                self.line_mut(&mut next, *q, b).0 = MesiLine::I;
                                copies.push((self.cache_loc(*q, b), CopySrc::Invalid));
                            }
                        }
                        *self.line_mut(&mut next, p, b) = (MesiLine::M, fill);
                        out.push(Transition {
                            action: Action::Internal("BusRdX", self.cache_loc(p, b)),
                            next,
                            tracking: Tracking::copies(copies),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_graph::has_serial_reordering;

    #[test]
    fn random_runs_of_correct_mesi_are_sc() {
        let mut rng = SmallRng::seed_from_u64(61);
        for i in 0..15 {
            let mut r = Runner::new(MesiProtocol::new(Params::new(2, 2, 2)));
            r.run_random(50, 0.5, &mut rng);
            let t = r.run().trace();
            assert!(has_serial_reordering(&t), "run {i}: non-SC trace {t}");
        }
    }

    #[test]
    fn exclusive_granted_only_without_copies() {
        let proto = MesiProtocol::new(Params::new(2, 1, 1));
        let s = proto.initial();
        let t = proto
            .transitions(&s)
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("BusRd", 1)))
            .unwrap();
        assert_eq!(t.next.lines[0].0, MesiLine::E, "first reader gets E");
        // Second reader: the E holder downgrades, both end S.
        let t2 = proto
            .transitions(&t.next)
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("BusRd", 2)))
            .unwrap();
        assert_eq!(t2.next.lines[0].0, MesiLine::S);
        assert_eq!(t2.next.lines[1].0, MesiLine::S);
    }

    #[test]
    fn silent_upgrade_enables_stores() {
        let proto = MesiProtocol::new(Params::new(1, 1, 2));
        let s = proto.initial();
        let rd = proto
            .transitions(&s)
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("BusRd", _)))
            .unwrap();
        // In E: no stores yet, but a silent upgrade is enabled.
        assert!(!proto
            .transitions(&rd.next)
            .iter()
            .any(|t| matches!(t.action, Action::Mem(op) if op.is_store())));
        let up = proto
            .transitions(&rd.next)
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("SilentUpgrade", _)))
            .unwrap();
        assert!(up.tracking.copies.is_empty(), "silent: no bus traffic");
        assert!(proto
            .transitions(&up.next)
            .iter()
            .any(|t| matches!(t.action, Action::Mem(op) if op.is_store())));
    }

    #[test]
    fn single_writer_invariant_holds_when_correct() {
        let mut rng = SmallRng::seed_from_u64(62);
        let params = Params::new(3, 2, 2);
        let proto = MesiProtocol::new(params);
        let mut r = Runner::new(proto);
        for _ in 0..300 {
            if !r.step_random(&mut rng) {
                break;
            }
            for b in params.blocks() {
                let writers = params
                    .procs()
                    .filter(|&p| {
                        matches!(
                            r.state().lines[p.idx() * 2 + b.idx()].0,
                            MesiLine::M | MesiLine::E
                        )
                    })
                    .count();
                let others = params
                    .procs()
                    .filter(|&p| r.state().lines[p.idx() * 2 + b.idx()].0 == MesiLine::S)
                    .count();
                assert!(writers <= 1, "two exclusive holders");
                assert!(
                    writers == 0 || others == 0,
                    "exclusive coexists with shared"
                );
            }
        }
    }

    #[test]
    fn buggy_mesi_reaches_double_exclusivity() {
        // P1 silently upgrades; the buggy snoop misses the M holder and
        // grants E (then M) to P2: two writers.
        let proto = MesiProtocol::buggy(Params::new(2, 1, 2));
        let mut r = Runner::new(proto);
        let take = |r: &mut Runner<MesiProtocol>, name: &str, payload: u32| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| matches!(t.action, Action::Internal(n, pl) if n == name && pl == payload))
                .unwrap_or_else(|| panic!("{name}({payload})"));
            r.take(t);
        };
        take(&mut r, "BusRd", 1); // P1 gets E
        take(&mut r, "SilentUpgrade", 1); // P1 gets M silently
        take(&mut r, "BusRd", 2); // buggy: P2 ALSO gets E (missed the M)
        assert_eq!(r.state().lines[0].0, MesiLine::M);
        assert_eq!(r.state().lines[1].0, MesiLine::E);
    }

    #[test]
    fn buggy_mesi_produces_non_sc_trace() {
        // Message-passing litmus across two blocks: the buggy snoop lets
        // P2 read a stale ⊥ for x while P1 silently holds x=1 in M; P2
        // then observes P1's *later* store to y, making the stale x read
        // unserializable.
        let proto = MesiProtocol::buggy(Params::new(2, 2, 1));
        let x = BlockId(1);
        let y = BlockId(2);
        let p1 = ProcId(1);
        let p2 = ProcId(2);
        let locs = MesiProtocol::buggy(Params::new(2, 2, 1));
        let mut r = Runner::new(proto);
        let internal = |r: &mut Runner<MesiProtocol>, name: &str, payload: u32| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| matches!(t.action, Action::Internal(n, pl) if n == name && pl == payload))
                .unwrap_or_else(|| panic!("{name}({payload})"));
            r.take(t);
        };
        let mem = |r: &mut Runner<MesiProtocol>, op: Op| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| t.action.op() == Some(op))
                .unwrap_or_else(|| panic!("{op}"));
            r.take(t);
        };
        // P1 silently takes M on x and stores 1.
        internal(&mut r, "BusRd", locs.cache_loc(p1, x));
        internal(&mut r, "SilentUpgrade", locs.cache_loc(p1, x));
        mem(&mut r, Op::store(p1, x, Value(1)));
        // P2 reads x: the buggy snoop misses P1's M and serves stale ⊥.
        internal(&mut r, "BusRd", locs.cache_loc(p2, x));
        // P1 stores y=1 and writes it back.
        internal(&mut r, "BusRd", locs.cache_loc(p1, y));
        internal(&mut r, "SilentUpgrade", locs.cache_loc(p1, y));
        mem(&mut r, Op::store(p1, y, Value(1)));
        internal(&mut r, "EvictM", locs.cache_loc(p1, y));
        // P2 observes y=1 then the stale x=⊥.
        internal(&mut r, "BusRd", locs.cache_loc(p2, y));
        mem(&mut r, Op::load(p2, y, Value(1)));
        mem(&mut r, Op::load(p2, x, Value::BOTTOM));
        let t = r.run().trace();
        assert!(!has_serial_reordering(&t), "stale read must break SC: {t}");
    }
}
