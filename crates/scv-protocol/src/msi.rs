//! A snooping MSI cache-coherence protocol on an atomic bus.
//!
//! Each processor has one cache line per block (Modified / Shared /
//! Invalid); bus transactions are atomic. Stores require the M state, so
//! the bus serializes stores to each block in real time — the protocol has
//! the real-time ST reordering property of §4.2 and is sequentially
//! consistent.
//!
//! [`MsiProtocol::buggy`] injects a classic coherence bug — an invalidation
//! that silently misses the highest-numbered sharer — which makes the
//! protocol *not* sequentially consistent and exercises the verifier's
//! rejection path.

use crate::api::{Action, CopySrc, LocId, Protocol, Tracking, Transition};
use scv_types::{BlockId, Op, Params, ProcId, Value};

/// Cache line state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Line {
    /// Modified: exclusive, dirty.
    M,
    /// Shared: clean, read-only.
    S,
    /// Invalid.
    I,
}

/// Protocol state: one line per (processor, block) plus memory.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MsiState {
    /// `lines[p.idx()*b + blk.idx()]` = (state, cached value).
    pub lines: Vec<(Line, Value)>,
    /// Memory contents per block.
    pub mem: Vec<Value>,
}

/// The MSI protocol (optionally fault-injected).
#[derive(Clone, Debug)]
pub struct MsiProtocol {
    params: Params,
    buggy: bool,
}

impl MsiProtocol {
    /// A correct MSI protocol.
    pub fn new(params: Params) -> Self {
        MsiProtocol {
            params,
            buggy: false,
        }
    }

    /// MSI with a lost invalidation: on a bus invalidation for `B`
    /// requested by `P`, the highest-numbered other sharer keeps its stale
    /// S copy.
    pub fn buggy(params: Params) -> Self {
        MsiProtocol {
            params,
            buggy: true,
        }
    }

    /// Is this the fault-injected variant?
    pub fn is_buggy(&self) -> bool {
        self.buggy
    }

    /// Location id of processor `p`'s cache line for `b`.
    pub fn cache_loc(&self, p: ProcId, b: BlockId) -> LocId {
        (p.idx() * self.params.b as usize + b.idx() + 1) as LocId
    }

    /// Location id of the memory word for `b`.
    pub fn mem_loc(&self, b: BlockId) -> LocId {
        (self.params.p as usize * self.params.b as usize + b.idx() + 1) as LocId
    }

    fn line(&self, s: &MsiState, p: ProcId, b: BlockId) -> (Line, Value) {
        s.lines[p.idx() * self.params.b as usize + b.idx()]
    }

    fn line_mut<'a>(&self, s: &'a mut MsiState, p: ProcId, b: BlockId) -> &'a mut (Line, Value) {
        &mut s.lines[p.idx() * self.params.b as usize + b.idx()]
    }

    /// The current owner (M holder) of `b`, if any.
    fn owner(&self, s: &MsiState, b: BlockId) -> Option<ProcId> {
        self.params
            .procs()
            .find(|&q| self.line(s, q, b).0 == Line::M)
    }

    /// Other processors holding `b` in S.
    fn sharers(&self, s: &MsiState, b: BlockId, except: ProcId) -> Vec<ProcId> {
        self.params
            .procs()
            .filter(|&q| q != except && self.line(s, q, b).0 == Line::S)
            .collect()
    }

    /// Invalidate `b` at every processor in `victims`, except (if buggy)
    /// the highest-numbered one. Appends the Invalid copy labels.
    fn invalidate(
        &self,
        s: &mut MsiState,
        b: BlockId,
        victims: &[ProcId],
        copies: &mut Vec<(LocId, CopySrc)>,
    ) {
        let spared = if self.buggy {
            victims.iter().max().copied()
        } else {
            None
        };
        for &q in victims {
            if Some(q) == spared {
                continue;
            }
            self.line_mut(s, q, b).0 = Line::I;
            copies.push((self.cache_loc(q, b), CopySrc::Invalid));
        }
    }
}

impl Protocol for MsiProtocol {
    type State = MsiState;

    fn name(&self) -> &'static str {
        if self.buggy {
            "msi-buggy"
        } else {
            "msi"
        }
    }

    fn params(&self) -> Params {
        self.params
    }

    fn locations(&self) -> u32 {
        (self.params.p as u32 + 1) * self.params.b as u32
    }

    fn initial(&self) -> Self::State {
        MsiState {
            lines: vec![(Line::I, Value::BOTTOM); (self.params.p * self.params.b) as usize],
            mem: vec![Value::BOTTOM; self.params.b as usize],
        }
    }

    fn transitions(&self, s: &Self::State) -> Vec<Transition<Self::State>> {
        let mut out = Vec::new();
        self.transitions_into(s, &mut out);
        out
    }

    fn transitions_into(&self, s: &Self::State, out: &mut Vec<Transition<Self::State>>) {
        for p in self.params.procs() {
            for b in self.params.blocks() {
                let (line, val) = self.line(s, p, b);
                match line {
                    Line::M | Line::S => {
                        // Hit: load the cached value.
                        out.push(Transition {
                            action: Action::Mem(Op::load(p, b, val)),
                            next: s.clone(),
                            tracking: Tracking::mem(self.cache_loc(p, b)),
                        });
                    }
                    Line::I => {}
                }
                if line == Line::M {
                    // Store hit: any value.
                    for v in self.params.values() {
                        let mut next = s.clone();
                        self.line_mut(&mut next, p, b).1 = v;
                        out.push(Transition {
                            action: Action::Mem(Op::store(p, b, v)),
                            next,
                            tracking: Tracking::mem(self.cache_loc(p, b)),
                        });
                    }
                    // Writeback-eviction.
                    let mut next = s.clone();
                    let mut copies = vec![(self.mem_loc(b), CopySrc::Loc(self.cache_loc(p, b)))];
                    next.mem[b.idx()] = val;
                    self.line_mut(&mut next, p, b).0 = Line::I;
                    copies.push((self.cache_loc(p, b), CopySrc::Invalid));
                    out.push(Transition {
                        action: Action::Internal("EvictM", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(copies),
                    });
                }
                if line == Line::S {
                    // Silent eviction.
                    let mut next = s.clone();
                    self.line_mut(&mut next, p, b).0 = Line::I;
                    out.push(Transition {
                        action: Action::Internal("EvictS", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(vec![(self.cache_loc(p, b), CopySrc::Invalid)]),
                    });
                    // BusUpgr: S -> M, invalidating other sharers.
                    let mut next = s.clone();
                    let mut copies = Vec::new();
                    let sharers = self.sharers(s, b, p);
                    self.invalidate(&mut next, b, &sharers, &mut copies);
                    self.line_mut(&mut next, p, b).0 = Line::M;
                    out.push(Transition {
                        action: Action::Internal("BusUpgr", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(copies),
                    });
                }
                if line == Line::I {
                    // BusRd: I -> S; source is the owner (with writeback)
                    // or memory.
                    let mut next = s.clone();
                    let mut copies = Vec::new();
                    match self.owner(s, b) {
                        Some(q) => {
                            let qval = self.line(s, q, b).1;
                            // Owner writes back and downgrades to S.
                            copies.push((self.mem_loc(b), CopySrc::Loc(self.cache_loc(q, b))));
                            next.mem[b.idx()] = qval;
                            self.line_mut(&mut next, q, b).0 = Line::S;
                            // Requester fills from (now clean) memory.
                            copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                            *self.line_mut(&mut next, p, b) = (Line::S, qval);
                        }
                        None => {
                            copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                            *self.line_mut(&mut next, p, b) = (Line::S, s.mem[b.idx()]);
                        }
                    }
                    out.push(Transition {
                        action: Action::Internal("BusRd", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(copies),
                    });
                    // BusRdX: I -> M; invalidate everyone else.
                    let mut next = s.clone();
                    let mut copies = Vec::new();
                    let fill_val = match self.owner(s, b) {
                        Some(q) => {
                            let qval = self.line(s, q, b).1;
                            copies.push((self.cache_loc(p, b), CopySrc::Loc(self.cache_loc(q, b))));
                            self.line_mut(&mut next, q, b).0 = Line::I;
                            copies.push((self.cache_loc(q, b), CopySrc::Invalid));
                            qval
                        }
                        None => {
                            copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                            s.mem[b.idx()]
                        }
                    };
                    let sharers = self.sharers(s, b, p);
                    self.invalidate(&mut next, b, &sharers, &mut copies);
                    *self.line_mut(&mut next, p, b) = (Line::M, fill_val);
                    out.push(Transition {
                        action: Action::Internal("BusRdX", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(copies),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_graph::has_serial_reordering;

    fn params() -> Params {
        Params::new(2, 2, 2)
    }

    #[test]
    fn random_runs_of_correct_msi_are_sc() {
        let mut rng = SmallRng::seed_from_u64(21);
        for i in 0..20 {
            let mut r = Runner::new(MsiProtocol::new(params()));
            r.run_random(40, 0.5, &mut rng);
            let t = r.run().trace();
            assert!(t.len() <= 40);
            assert!(has_serial_reordering(&t), "run {i}: non-SC trace {t}");
        }
    }

    #[test]
    fn at_most_one_owner_invariant() {
        let mut rng = SmallRng::seed_from_u64(22);
        let proto = MsiProtocol::new(Params::new(3, 2, 2));
        let mut r = Runner::new(proto);
        for _ in 0..200 {
            if !r.step_random(&mut rng) {
                break;
            }
            let s = r.state().clone();
            for b in Params::new(3, 2, 2).blocks() {
                let owners = Params::new(3, 2, 2)
                    .procs()
                    .filter(|&p| s.lines[p.idx() * 2 + b.idx()].0 == Line::M)
                    .count();
                let sharers = Params::new(3, 2, 2)
                    .procs()
                    .filter(|&p| s.lines[p.idx() * 2 + b.idx()].0 == Line::S)
                    .count();
                assert!(owners <= 1);
                assert!(owners == 0 || sharers == 0, "M coexists with S");
            }
        }
    }

    #[test]
    fn buggy_msi_reaches_a_non_sc_trace() {
        // Drive the message-passing litmus by hand:
        // P1: ST x=1; ST y=1.   P2: LD y=1; LD x=⊥  (stale S on x).
        let proto = MsiProtocol::buggy(Params::new(2, 2, 1));
        let mut r = Runner::new(proto);
        let take_internal = |r: &mut Runner<MsiProtocol>, name: &str, payload: u32| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| matches!(t.action, Action::Internal(n, pl) if n == name && pl == payload))
                .unwrap_or_else(|| panic!("internal {name}({payload}) enabled"));
            r.take(t);
        };
        let take_mem = |r: &mut Runner<MsiProtocol>, op: Op| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| t.action.op() == Some(op))
                .unwrap_or_else(|| panic!("{op} enabled"));
            r.take(t);
        };
        let x = BlockId(1);
        let y = BlockId(2);
        let p1 = ProcId(1);
        let p2 = ProcId(2);
        let proto_ref = MsiProtocol::buggy(Params::new(2, 2, 1));
        // P2 reads x=⊥ into S (so it holds a stale copy later).
        take_internal(&mut r, "BusRd", proto_ref.cache_loc(p2, x));
        // P1 acquires M on x; the buggy invalidation spares P2.
        take_internal(&mut r, "BusRdX", proto_ref.cache_loc(p1, x));
        take_mem(&mut r, Op::store(p1, x, Value(1)));
        // P1 acquires M on y and stores.
        take_internal(&mut r, "BusRdX", proto_ref.cache_loc(p1, y));
        take_mem(&mut r, Op::store(p1, y, Value(1)));
        // P1 writes y back so P2 can read the new value.
        take_internal(&mut r, "EvictM", proto_ref.cache_loc(p1, y));
        // P2 reads y=1 (fresh), then x=⊥ (stale S copy — the bug).
        take_internal(&mut r, "BusRd", proto_ref.cache_loc(p2, y));
        take_mem(&mut r, Op::load(p2, y, Value(1)));
        take_mem(&mut r, Op::load(p2, x, Value::BOTTOM));
        let t = r.run().trace();
        assert!(!has_serial_reordering(&t), "expected non-SC trace, got {t}");
    }

    #[test]
    fn correct_msi_invalidates_all_sharers() {
        let proto = MsiProtocol::new(Params::new(3, 1, 1));
        let mut s = proto.initial();
        // P2 and P3 share block 1.
        // Row-major (proc, block) indexing with b = 1: proc i is slot i.
        s.lines[1].0 = Line::S;
        s.lines[2].0 = Line::S;
        // P1 issues BusRdX.
        let t = proto
            .transitions(&s)
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("BusRdX", l) if l == proto.cache_loc(ProcId(1), BlockId(1))))
            .unwrap();
        let next = t.next;
        assert_eq!(next.lines[1].0, Line::I);
        assert_eq!(next.lines[2].0, Line::I);
        assert_eq!(next.lines[0].0, Line::M);
    }

    #[test]
    fn buggy_msi_spares_highest_sharer() {
        let proto = MsiProtocol::buggy(Params::new(3, 1, 1));
        let mut s = proto.initial();
        s.lines[1].0 = Line::S;
        s.lines[2].0 = Line::S;
        let t = proto
            .transitions(&s)
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("BusRdX", l) if l == proto.cache_loc(ProcId(1), BlockId(1))))
            .unwrap();
        let next = t.next;
        assert_eq!(next.lines[1].0, Line::I);
        assert_eq!(next.lines[2].0, Line::S, "bug: P3 keeps its stale copy");
    }

    #[test]
    fn loads_match_cache_contents() {
        let proto = MsiProtocol::new(params());
        let mut rng = SmallRng::seed_from_u64(23);
        let mut r = Runner::new(proto);
        for _ in 0..150 {
            if !r.step_random(&mut rng) {
                break;
            }
        }
        // Every load in the run returned the then-current cache value —
        // spot check by replaying with the ST-index machinery elsewhere;
        // here just confirm the trace is within bounds.
        assert!(r.run().trace().in_bounds(&params()));
    }
}
