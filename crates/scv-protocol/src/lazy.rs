//! The Lazy Caching protocol of Afek, Brown & Merritt.
//!
//! Every processor has a cache, an *out-queue* of its pending writes and an
//! *in-queue* of memory updates it has not yet applied:
//!
//! * `ST(P,B,V)` appends `(B,V)` to `Out_P` — the store completes long
//!   before it is serialized;
//! * `memory-write MW(P)` pops the head of `Out_P`, writes memory, and
//!   broadcasts the update into every in-queue (starred in `In_P` itself);
//! * `cache-update CU(P)` pops the head of `In_P` into `P`'s cache;
//! * `memory-read MR(P,B)` spontaneously refreshes `P`'s cache from
//!   memory; `cache-invalidate CI(P,B)` drops a cache entry;
//! * `LD(P,B,V)` is enabled only when `Out_P` is empty and `In_P` holds no
//!   starred entries (so a processor observes its own writes in order).
//!
//! The protocol is sequentially consistent, but the serial order of STs to
//! a block is the **memory-write order**, not the real-time ST order — it
//! is the paper's (§4.2) example of a protocol needing a non-trivial ST
//! order generator. Accordingly [`Protocol::st_order_policy`] designates
//! each block's memory word as its serialization location.
//!
//! Queues are modelled as shifting arrays so that popping is a sequence of
//! location copies (and an invalidation of the freed slot), keeping states
//! canonical and the tracking labels faithful.

use crate::api::{Action, CopySrc, LocId, Protocol, StOrderPolicy, Tracking, Transition};
use scv_types::{BlockId, Op, Params, ProcId, Value};

/// An out-queue entry: `(block, value)`.
type OutEntry = Option<(u8, Value)>;
/// An in-queue entry: `(block, value, starred)`.
type InEntry = Option<(u8, Value, bool)>;

/// Protocol state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LazyState {
    /// `cache[p.idx()*b + blk.idx()]`: cached value, `None` = invalid.
    pub cache: Vec<Option<Value>>,
    /// Memory per block.
    pub mem: Vec<Value>,
    /// `out[p.idx()*qo + i]`: pending writes, head at index 0.
    pub out: Vec<OutEntry>,
    /// `inq[p.idx()*qi + i]`: pending updates, head at index 0.
    pub inq: Vec<InEntry>,
}

/// The Lazy Caching protocol.
#[derive(Clone, Debug)]
pub struct LazyCaching {
    params: Params,
    /// Out-queue depth.
    qo: u8,
    /// In-queue depth.
    qi: u8,
}

impl LazyCaching {
    /// Create a lazy-caching protocol with the given queue depths.
    pub fn new(params: Params, qo: u8, qi: u8) -> Self {
        assert!(qo >= 1 && qi >= 1);
        LazyCaching { params, qo, qi }
    }

    /// Out-queue depth.
    pub fn out_depth(&self) -> u8 {
        self.qo
    }

    /// In-queue depth.
    pub fn in_depth(&self) -> u8 {
        self.qi
    }

    /// Location of `p`'s cache entry for `b`.
    pub fn cache_loc(&self, p: ProcId, b: BlockId) -> LocId {
        (p.idx() * self.params.b as usize + b.idx() + 1) as LocId
    }

    /// Location of the memory word for `b` (the serialization location).
    pub fn mem_loc(&self, b: BlockId) -> LocId {
        (self.params.p as usize * self.params.b as usize + b.idx() + 1) as LocId
    }

    /// Location of slot `i` of `p`'s out-queue.
    pub fn out_loc(&self, p: ProcId, i: u8) -> LocId {
        let base = (self.params.p as usize + 1) * self.params.b as usize;
        (base + p.idx() * self.qo as usize + i as usize + 1) as LocId
    }

    /// Location of slot `i` of `p`'s in-queue.
    pub fn in_loc(&self, p: ProcId, i: u8) -> LocId {
        let base = (self.params.p as usize + 1) * self.params.b as usize
            + self.params.p as usize * self.qo as usize;
        (base + p.idx() * self.qi as usize + i as usize + 1) as LocId
    }

    fn out_slice<'a>(&self, s: &'a LazyState, p: ProcId) -> &'a [OutEntry] {
        let base = p.idx() * self.qo as usize;
        &s.out[base..base + self.qo as usize]
    }

    fn in_slice<'a>(&self, s: &'a LazyState, p: ProcId) -> &'a [InEntry] {
        let base = p.idx() * self.qi as usize;
        &s.inq[base..base + self.qi as usize]
    }

    fn out_len(&self, s: &LazyState, p: ProcId) -> usize {
        self.out_slice(s, p)
            .iter()
            .take_while(|e| e.is_some())
            .count()
    }

    fn in_len(&self, s: &LazyState, p: ProcId) -> usize {
        self.in_slice(s, p)
            .iter()
            .take_while(|e| e.is_some())
            .count()
    }

    /// May `p` load right now? Out-queue empty, no starred in-queue entry.
    fn can_read(&self, s: &LazyState, p: ProcId) -> bool {
        self.out_len(s, p) == 0
            && !self
                .in_slice(s, p)
                .iter()
                .flatten()
                .any(|&(_, _, star)| star)
    }
}

impl Protocol for LazyCaching {
    type State = LazyState;

    fn name(&self) -> &'static str {
        "lazy-caching"
    }

    fn params(&self) -> Params {
        self.params
    }

    fn locations(&self) -> u32 {
        (self.params.p as u32 + 1) * self.params.b as u32
            + self.params.p as u32 * (self.qo as u32 + self.qi as u32)
    }

    fn initial(&self) -> Self::State {
        LazyState {
            cache: vec![None; (self.params.p * self.params.b) as usize],
            mem: vec![Value::BOTTOM; self.params.b as usize],
            out: vec![None; self.params.p as usize * self.qo as usize],
            inq: vec![None; self.params.p as usize * self.qi as usize],
        }
    }

    fn st_order_policy(&self) -> StOrderPolicy {
        StOrderPolicy::Serialization {
            locs: self.params.blocks().map(|b| self.mem_loc(b)).collect(),
        }
    }

    fn transitions(&self, s: &Self::State) -> Vec<Transition<Self::State>> {
        let mut out = Vec::new();
        self.transitions_into(s, &mut out);
        out
    }

    fn transitions_into(&self, s: &Self::State, out: &mut Vec<Transition<Self::State>>) {
        let pb = self.params.b as usize;
        for p in self.params.procs() {
            let out_len = self.out_len(s, p);
            let in_len = self.in_len(s, p);

            // ST: append to the out-queue.
            if out_len < self.qo as usize {
                for b in self.params.blocks() {
                    for v in self.params.values() {
                        let mut next = s.clone();
                        next.out[p.idx() * self.qo as usize + out_len] = Some((b.0, v));
                        out.push(Transition {
                            action: Action::Mem(Op::store(p, b, v)),
                            next,
                            tracking: Tracking::mem(self.out_loc(p, out_len as u8)),
                        });
                    }
                }
            }

            // LD: cache hit, only when reads are allowed.
            if self.can_read(s, p) {
                for b in self.params.blocks() {
                    if let Some(v) = s.cache[p.idx() * pb + b.idx()] {
                        out.push(Transition {
                            action: Action::Mem(Op::load(p, b, v)),
                            next: s.clone(),
                            tracking: Tracking::mem(self.cache_loc(p, b)),
                        });
                    }
                }
            }

            // MW(P): serialize the head of Out_P.
            if out_len > 0
                && self
                    .params
                    .procs()
                    .all(|q| self.in_len(s, q) < self.qi as usize)
            {
                let (blk, v) = s.out[p.idx() * self.qo as usize].expect("head occupied");
                let b = BlockId(blk);
                let head_loc = self.out_loc(p, 0);
                let mut next = s.clone();
                let mut copies = Vec::new();
                // Memory write (the serialization point).
                next.mem[b.idx()] = v;
                copies.push((self.mem_loc(b), CopySrc::Loc(head_loc)));
                // Broadcast into every in-queue (starred at P itself).
                for q in self.params.procs() {
                    let qi_len = self.in_len(s, q);
                    next.inq[q.idx() * self.qi as usize + qi_len] = Some((blk, v, q == p));
                    copies.push((self.in_loc(q, qi_len as u8), CopySrc::Loc(head_loc)));
                }
                // Shift Out_P down; the slot the tail vacated is freed.
                for i in 0..self.qo as usize - 1 {
                    let e = s.out[p.idx() * self.qo as usize + i + 1];
                    next.out[p.idx() * self.qo as usize + i] = e;
                    if e.is_some() {
                        copies.push((
                            self.out_loc(p, i as u8),
                            CopySrc::Loc(self.out_loc(p, i as u8 + 1)),
                        ));
                    }
                }
                next.out[p.idx() * self.qo as usize + self.qo as usize - 1] = None;
                copies.push((self.out_loc(p, out_len as u8 - 1), CopySrc::Invalid));
                out.push(Transition {
                    action: Action::Internal("MW", p.0 as u32),
                    next,
                    tracking: Tracking::copies(copies),
                });
            }

            // CU(P): apply the head of In_P to the cache.
            if in_len > 0 {
                let (blk, _v, _star) = s.inq[p.idx() * self.qi as usize].expect("head occupied");
                let b = BlockId(blk);
                let mut next = s.clone();
                let mut copies = Vec::new();
                next.cache[p.idx() * pb + b.idx()] =
                    s.inq[p.idx() * self.qi as usize].map(|(_, v, _)| v);
                copies.push((self.cache_loc(p, b), CopySrc::Loc(self.in_loc(p, 0))));
                for i in 0..self.qi as usize - 1 {
                    let e = s.inq[p.idx() * self.qi as usize + i + 1];
                    next.inq[p.idx() * self.qi as usize + i] = e;
                    if e.is_some() {
                        copies.push((
                            self.in_loc(p, i as u8),
                            CopySrc::Loc(self.in_loc(p, i as u8 + 1)),
                        ));
                    }
                }
                next.inq[p.idx() * self.qi as usize + self.qi as usize - 1] = None;
                copies.push((self.in_loc(p, in_len as u8 - 1), CopySrc::Invalid));
                out.push(Transition {
                    action: Action::Internal("CU", p.0 as u32),
                    next,
                    tracking: Tracking::copies(copies),
                });
            }

            // MR(P,B): spontaneous cache refresh from memory; CI(P,B):
            // spontaneous invalidation.
            for b in self.params.blocks() {
                let mut next = s.clone();
                next.cache[p.idx() * pb + b.idx()] = Some(s.mem[b.idx()]);
                if next.cache != s.cache {
                    out.push(Transition {
                        action: Action::Internal("MR", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(vec![(
                            self.cache_loc(p, b),
                            CopySrc::Loc(self.mem_loc(b)),
                        )]),
                    });
                }
                if s.cache[p.idx() * pb + b.idx()].is_some() {
                    let mut next = s.clone();
                    next.cache[p.idx() * pb + b.idx()] = None;
                    out.push(Transition {
                        action: Action::Internal("CI", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(vec![(self.cache_loc(p, b), CopySrc::Invalid)]),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_graph::has_serial_reordering;

    fn proto() -> LazyCaching {
        LazyCaching::new(Params::new(2, 2, 2), 2, 2)
    }

    #[test]
    fn random_runs_are_sc() {
        let mut rng = SmallRng::seed_from_u64(41);
        for i in 0..15 {
            let mut r = Runner::new(proto());
            r.run_random(60, 0.4, &mut rng);
            let t = r.run().trace();
            assert!(has_serial_reordering(&t), "run {i}: non-SC trace {t}");
        }
    }

    #[test]
    fn stores_are_reordered_wrt_memory_writes() {
        // P1 stores to B1 (queued); P2 stores to B1 (queued); P2's MW runs
        // first: the serial ST order is P2's store before P1's even though
        // the trace order is the opposite.
        let p = proto();
        let mut r = Runner::new(p);
        let take_st = |r: &mut Runner<LazyCaching>, pid: u8, v: u8| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| t.action.op() == Some(Op::store(ProcId(pid), BlockId(1), Value(v))))
                .unwrap();
            r.take(t);
        };
        let take_mw = |r: &mut Runner<LazyCaching>, pid: u8| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| matches!(t.action, Action::Internal("MW", q) if q == pid as u32))
                .unwrap();
            r.take(t);
        };
        take_st(&mut r, 1, 1);
        take_st(&mut r, 2, 2);
        take_mw(&mut r, 2); // P2's store serializes first
        take_mw(&mut r, 1);
        // Memory ends with P1's value.
        assert_eq!(r.state().mem[0], Value(1));
        // The MW copies name the memory word as destination — the
        // serialization location the ST order generator watches.
        let mw_steps: Vec<_> = r
            .run()
            .steps
            .iter()
            .filter(|s| matches!(s.action, Action::Internal("MW", _)))
            .collect();
        let proto = proto();
        for s in &mw_steps {
            assert!(s
                .tracking
                .copies
                .iter()
                .any(|(dst, _)| *dst == proto.mem_loc(BlockId(1))));
        }
    }

    #[test]
    fn reads_blocked_while_out_queue_nonempty() {
        let p = proto();
        let mut r = Runner::new(p);
        // Fill the cache first so a load would otherwise be enabled.
        let mr = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("MR", 1)))
            .unwrap();
        r.take(mr);
        assert!(r
            .enabled()
            .iter()
            .any(|t| matches!(t.action, Action::Mem(op) if op.is_load() && op.proc == ProcId(1))));
        // Store: loads by P1 disappear.
        let st = r
            .enabled()
            .into_iter()
            .find(|t| t.action.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1))))
            .unwrap();
        r.take(st);
        assert!(!r
            .enabled()
            .iter()
            .any(|t| matches!(t.action, Action::Mem(op) if op.is_load() && op.proc == ProcId(1))));
    }

    #[test]
    fn reads_blocked_while_starred_update_pending() {
        let p = proto();
        let mut r = Runner::new(p);
        let st = r
            .enabled()
            .into_iter()
            .find(|t| t.action.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1))))
            .unwrap();
        r.take(st);
        let mw = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("MW", 1)))
            .unwrap();
        r.take(mw);
        // Out-queue empty now, but In_1 holds a starred entry.
        assert!(!r
            .enabled()
            .iter()
            .any(|t| matches!(t.action, Action::Mem(op) if op.is_load() && op.proc == ProcId(1))));
        // Apply the update; then P1 reads its own write.
        let cu = r
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Internal("CU", 1)))
            .unwrap();
        r.take(cu);
        assert!(r
            .enabled()
            .iter()
            .any(|t| t.action.op() == Some(Op::load(ProcId(1), BlockId(1), Value(1)))));
    }

    #[test]
    fn own_writes_observed_in_order() {
        // The litmus from the lazy-caching literature: after ST 1 and ST 2
        // to the same block, the processor must read 2, never 1.
        let mut rng = SmallRng::seed_from_u64(43);
        for _ in 0..10 {
            let mut r = Runner::new(LazyCaching::new(Params::new(1, 1, 2), 2, 3));
            r.run_random(50, 0.5, &mut rng);
            let t = r.run().trace();
            assert!(
                has_serial_reordering(&t),
                "single-processor lazy caching must be SC: {t}"
            );
        }
    }
}
