//! Encode→decode round-trips on adversarial bandwidth-boundary graphs.
//!
//! The Lemma 3.2 encoder is exercised exactly where its ID bookkeeping is
//! tightest: graphs whose bandwidth *equals* the requested `k` (every one
//! of the `k+1` IDs must be live at some point), cliques that saturate
//! the ID space, and long chains that force an ID to be recycled on every
//! step. A hand-built descriptor battery then pins the `add-ID` recycling
//! semantics — an ID stolen by `add-ID` must route subsequent edges to
//! its new holder, and a recycled ID must not resurrect its old node.

use proptest::prelude::*;
use scv_descriptor::{
    decode, encode, naive_descriptor, ConstraintGraph, DecodeError, Descriptor, EdgeSet,
    EncodeError, Symbol,
};
use scv_types::{BlockId, Op, ProcId, Value};

fn st(p: u8, b: u8, v: u8) -> Op {
    Op::store(ProcId(p), BlockId(b), Value(v))
}

/// A clique on `n` nodes (edges `u -> v` for all `u < v`): every earlier
/// node has an edge to the last one, so all `n` IDs are simultaneously
/// live — bandwidth exactly `n - 1`.
fn clique(n: usize) -> ConstraintGraph {
    let mut g = ConstraintGraph::with_nodes((0..n).map(|i| st(1, 1, (i % 5) as u8 + 1)));
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v, EdgeSet::PO);
        }
    }
    g
}

/// A banded graph: node `i` has an edge to `i + w` — the classic
/// bandwidth-`w` shape, with every window fully saturated.
fn band(n: usize, w: usize) -> ConstraintGraph {
    let mut g = ConstraintGraph::with_nodes((0..n).map(|i| st(1, 1, (i % 7) as u8 + 1)));
    for u in 0..n {
        for d in 1..=w {
            if u + d < n {
                g.add_edge(u, u + d, EdgeSet::PO);
            }
        }
    }
    g
}

fn roundtrips(g: &ConstraintGraph, k: u32) {
    let d = encode(g, k).unwrap_or_else(|e| panic!("encode at k={k}: {e}"));
    assert!(d.ids_in_range(), "IDs escape 1..={} at k={k}", k + 1);
    let (dg, stats) = decode(&d).unwrap_or_else(|e| panic!("decode at k={k}: {e}"));
    let g2 = dg.to_constraint_graph().unwrap();
    assert_eq!(&g2, g, "roundtrip at k={k}");
    assert!(
        stats.max_active <= (k + 1) as usize,
        "decoder saw {} active nodes at k={k}",
        stats.max_active
    );
}

#[test]
fn cliques_encode_exactly_at_their_bandwidth() {
    for n in 2..=7usize {
        let g = clique(n);
        let k = (n - 1) as u32;
        assert_eq!(g.bandwidth(), n - 1);
        roundtrips(&g, k);
        // One below the boundary must fail, and name the bound it was
        // given — not silently truncate the graph.
        assert_eq!(
            encode(&g, k - 1),
            Err(EncodeError::BandwidthExceeded {
                node: n - 1,
                k: k - 1
            })
        );
    }
}

#[test]
fn a_boundary_clique_uses_all_k_plus_1_ids() {
    // With bandwidth == k, the free pool must drain completely: the
    // descriptor mentions every ID in 1..=k+1.
    let n = 5;
    let g = clique(n);
    let k = (n - 1) as u32;
    let d = encode(&g, k).unwrap();
    let mut used: Vec<u32> = d
        .symbols
        .iter()
        .filter_map(|s| match *s {
            Symbol::Node { id, .. } => Some(id),
            _ => None,
        })
        .collect();
    used.sort_unstable();
    used.dedup();
    assert_eq!(used, (1..=k + 1).collect::<Vec<_>>());
}

#[test]
fn banded_graphs_roundtrip_at_and_above_the_boundary() {
    for (n, w) in [(12, 1), (12, 2), (20, 3), (9, 4)] {
        let g = band(n, w);
        let k = g.bandwidth() as u32;
        assert_eq!(k as usize, w, "band({n},{w}) bandwidth");
        for kk in k..=k + 2 {
            roundtrips(&g, kk);
        }
        assert!(matches!(
            encode(&g, k - 1),
            Err(EncodeError::BandwidthExceeded { .. })
        ));
    }
}

#[test]
fn chains_recycle_one_id_forever() {
    // A 150-node chain at k=1: exactly two IDs exist, so the encoder must
    // recycle the predecessor's ID at every single step.
    let n = 150;
    let g = band(n, 1);
    let d = encode(&g, 1).unwrap();
    for s in &d.symbols {
        assert!(s.max_id() <= 2, "chain at k=1 leaked ID {}", s.max_id());
    }
    let (dg, stats) = decode(&d).unwrap();
    assert_eq!(dg.node_count(), n);
    assert_eq!(stats.max_active, 2);
    assert_eq!(dg.to_constraint_graph().unwrap(), g);
}

#[test]
fn the_naive_descriptor_agrees_with_the_recycling_encoder() {
    for g in [clique(5), band(14, 3)] {
        let via_naive = decode(&naive_descriptor(&g))
            .unwrap()
            .0
            .to_constraint_graph()
            .unwrap();
        let via_encode = decode(&encode(&g, g.bandwidth() as u32).unwrap())
            .unwrap()
            .0
            .to_constraint_graph()
            .unwrap();
        assert_eq!(via_naive, g);
        assert_eq!(via_encode, g);
    }
}

// ---- add-ID recycling semantics (hand-built descriptors) ----

#[test]
fn add_id_steals_the_id_from_its_previous_holder() {
    // Node A holds 1, node B holds 2. add-ID(2,1) moves 1 onto B, so a
    // later edge (1,3) attaches to B — not to A, and not dangling.
    let mut d = Descriptor::new(2);
    d.symbols = vec![
        Symbol::Node { id: 1, label: None }, // node 0
        Symbol::Node { id: 2, label: None }, // node 1
        Symbol::AddId { of: 2, add: 1 },
        Symbol::Node { id: 3, label: None }, // node 2
        Symbol::Edge {
            from: 1,
            to: 3,
            label: None,
        },
    ];
    let (g, _) = decode(&d).unwrap();
    assert_eq!(g.edges, vec![(1, 2, EdgeSet::EMPTY)]);
}

#[test]
fn a_node_descriptor_recycling_an_alias_detaches_it() {
    // Node 0 holds {1, 2} after add-ID. Re-introducing ID 2 as a fresh
    // node must strip it from node 0: edges via 2 go to the new node,
    // edges via 1 still reach node 0.
    let mut d = Descriptor::new(2);
    d.symbols = vec![
        Symbol::Node { id: 1, label: None }, // node 0
        Symbol::AddId { of: 1, add: 2 },
        Symbol::Node { id: 2, label: None }, // node 1 (steals ID 2)
        Symbol::Edge {
            from: 2,
            to: 1,
            label: None,
        },
        Symbol::Edge {
            from: 1,
            to: 2,
            label: None,
        },
    ];
    let (g, _) = decode(&d).unwrap();
    assert_eq!(
        g.edges,
        vec![(1, 0, EdgeSet::EMPTY), (0, 1, EdgeSet::EMPTY)]
    );
}

#[test]
fn an_id_freed_by_add_id_theft_can_seed_a_fresh_node() {
    // add-ID(2,1) moves ID 1 from node 0 onto node 1, so reusing 1 for a
    // brand-new node is legal and must not resurrect node 0: the old
    // holder stays permanently unreachable.
    let mut d = Descriptor::new(2);
    d.symbols = vec![
        Symbol::Node { id: 1, label: None }, // node 0
        Symbol::Node { id: 2, label: None }, // node 1
        Symbol::AddId { of: 2, add: 1 },     // node 1 now holds {1, 2}
        Symbol::Node { id: 1, label: None }, // node 2 (takes 1 back)
        Symbol::Edge {
            from: 1,
            to: 2,
            label: None,
        },
    ];
    let (g, _) = decode(&d).unwrap();
    assert_eq!(g.node_count(), 3);
    assert_eq!(g.edges, vec![(2, 1, EdgeSet::EMPTY)]);
}

#[test]
fn edges_through_a_recycled_id_never_reach_the_old_node() {
    // ID 1 is introduced, recycled for a second node; an edge (1,2) must
    // attach to the *new* holder even though the old node is adjacent in
    // descriptor order.
    let mut d = Descriptor::new(1);
    d.symbols = vec![
        Symbol::Node { id: 1, label: None }, // node 0
        Symbol::Node { id: 2, label: None }, // node 1
        Symbol::Node { id: 1, label: None }, // node 2 (recycles 1)
        Symbol::Edge {
            from: 1,
            to: 2,
            label: None,
        },
    ];
    let (g, _) = decode(&d).unwrap();
    assert_eq!(g.edges, vec![(2, 1, EdgeSet::EMPTY)]);
}

#[test]
fn boundary_ids_k_and_k_plus_1_are_legal_but_k_plus_2_is_not() {
    for k in 1..=4u32 {
        let mut d = Descriptor::new(k);
        d.symbols = vec![
            Symbol::Node { id: k, label: None },
            Symbol::Node {
                id: k + 1,
                label: None,
            },
            Symbol::Edge {
                from: k,
                to: k + 1,
                label: None,
            },
        ];
        assert!(decode(&d).is_ok(), "IDs k, k+1 must decode at k={k}");

        let mut d = Descriptor::new(k);
        d.symbols = vec![Symbol::Node {
            id: k + 2,
            label: None,
        }];
        assert_eq!(
            decode(&d),
            Err(DecodeError::IdOutOfRange { position: 0 }),
            "ID k+2 must be rejected at k={k}"
        );
    }
}

#[test]
fn add_id_with_out_of_range_ids_is_rejected() {
    let mut d = Descriptor::new(1);
    d.symbols = vec![
        Symbol::Node { id: 1, label: None },
        Symbol::AddId { of: 1, add: 3 },
    ];
    assert_eq!(decode(&d), Err(DecodeError::IdOutOfRange { position: 1 }));
}

// ---- randomized boundary sweep ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random graphs with edges confined to a window of width `w`
    /// round-trip at their exact measured bandwidth.
    #[test]
    fn random_banded_graphs_roundtrip_at_their_bandwidth(
        n in 2usize..18,
        w in 1usize..5,
        edge_bits in proptest::collection::vec(0u32..16, 0..64),
    ) {
        let mut g = ConstraintGraph::with_nodes(
            (0..n).map(|i| st((i % 3) as u8 + 1, 1, (i % 5) as u8 + 1)),
        );
        for (i, bits) in edge_bits.iter().enumerate() {
            let u = i % n;
            let d = (bits % w as u32) as usize + 1;
            if u + d < n {
                g.add_edge(u, u + d, EdgeSet::PO);
            }
        }
        let k = g.bandwidth() as u32;
        let d = encode(&g, k).unwrap();
        prop_assert!(d.ids_in_range());
        let (dg, stats) = decode(&d).unwrap();
        prop_assert_eq!(dg.to_constraint_graph().unwrap(), g.clone());
        prop_assert!(stats.max_active <= (k + 1) as usize);
        // …and strictly below the measured bandwidth, encoding must fail
        // (bandwidth 0 means an edgeless graph; nothing below to test).
        if k > 0 {
            prop_assert!(encode(&g, k - 1).is_err());
        }
    }
}
