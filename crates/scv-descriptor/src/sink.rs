//! Word sinks for canonical encodings.
//!
//! The observer and checker emit their canonical encodings as a linear
//! stream of `u64` words. [`EncSink`] abstracts the destination of that
//! stream so the same encoder body can either *materialize* the encoding
//! (`Vec<u64>`, the classic path) or *compare it incrementally* against a
//! current orbit-minimum candidate ([`CmpSink`]), aborting the walk at the
//! first word that proves the candidate lexicographically greater. The
//! symmetry canonicalization fast path in `scv-mc` leans on the abort:
//! most orbit candidates lose within a handful of words, so almost no
//! candidate pays for a full encoding.

/// Destination of a canonical-encoding word stream.
///
/// `word` returns `false` to abort the encoding walk early — encoders
/// must return immediately (their partial output is meaningless to the
/// sink from that point on, and the sink guarantees `false` for every
/// subsequent word).
pub trait EncSink {
    /// Append one word; `false` aborts the walk.
    #[must_use]
    fn word(&mut self, w: u64) -> bool;

    /// Append a run of words; `false` aborts the walk.
    #[must_use]
    fn words(&mut self, ws: &[u64]) -> bool {
        ws.iter().all(|&w| self.word(w))
    }
}

/// The materializing sink: plain appends, never aborts.
impl EncSink for Vec<u64> {
    #[inline]
    fn word(&mut self, w: u64) -> bool {
        self.push(w);
        true
    }

    #[inline]
    fn words(&mut self, ws: &[u64]) -> bool {
        self.extend_from_slice(ws);
        true
    }
}

/// Lexicographic relation of a completed [`CmpSink`] candidate to the
/// incumbent best encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOutcome {
    /// The candidate is lexicographically smaller; the sink's buffer
    /// holds its complete encoding.
    Less,
    /// The candidate's encoding is word-for-word identical.
    Equal,
    /// The candidate lost at some word (the walk was aborted there).
    Greater,
}

/// A sink that compares the incoming stream against an incumbent best
/// encoding word by word.
///
/// While the streams agree nothing is copied; at the first divergence the
/// sink either aborts the walk (candidate word greater) or switches to
/// recording mode (candidate word smaller), back-filling the shared
/// prefix into `buf` so that on [`CmpOutcome::Less`] the buffer holds the
/// candidate's full encoding, ready to be swapped in as the new best.
#[derive(Debug)]
pub struct CmpSink<'a> {
    best: &'a [u64],
    buf: &'a mut Vec<u64>,
    pos: usize,
    state: CmpOutcome,
}

impl<'a> CmpSink<'a> {
    /// Compare an encoding streamed via [`EncSink`] against `best`,
    /// recording into `buf` (cleared) if the candidate wins.
    pub fn new(best: &'a [u64], buf: &'a mut Vec<u64>) -> CmpSink<'a> {
        buf.clear();
        CmpSink {
            best,
            buf,
            pos: 0,
            state: CmpOutcome::Equal,
        }
    }

    /// Declare the next `n` words equal to the incumbent's without
    /// streaming them. Sound only when the caller knows the candidate's
    /// next `n` words match `best` exactly (e.g. a shared, perm-invariant
    /// protocol-encoding prefix).
    pub fn skip_equal(&mut self, n: usize) {
        debug_assert_eq!(self.state, CmpOutcome::Equal, "skip after divergence");
        debug_assert!(self.pos + n <= self.best.len());
        self.pos += n;
    }

    /// Number of words of `best` consumed while still `Equal` — after a
    /// divergence, the index of the first differing word. Lets callers
    /// decide whether a `Greater` verdict was reached inside a shared
    /// prefix (so sibling candidates would lose there too).
    pub fn matched(&self) -> usize {
        self.pos
    }

    /// Where the comparison stands. `Equal` is only final once the whole
    /// candidate has been streamed ([`CmpSink::finish`] checks lengths).
    pub fn outcome(&self) -> CmpOutcome {
        self.state
    }

    /// Final verdict. Candidate encodings in one orbit are renamings of
    /// one another and therefore equal in length; a short `Equal` stream
    /// indicates an encoder bug, caught here in debug builds.
    pub fn finish(self) -> CmpOutcome {
        if self.state == CmpOutcome::Equal {
            debug_assert_eq!(self.pos, self.best.len(), "candidate shorter than best");
        }
        self.state
    }
}

impl EncSink for CmpSink<'_> {
    #[inline]
    fn word(&mut self, w: u64) -> bool {
        match self.state {
            CmpOutcome::Greater => false,
            CmpOutcome::Less => {
                self.buf.push(w);
                true
            }
            CmpOutcome::Equal => {
                if self.pos >= self.best.len() {
                    // Longer than the incumbent cannot happen for true
                    // orbit candidates; treat as a loss defensively.
                    debug_assert!(false, "candidate longer than best");
                    self.state = CmpOutcome::Greater;
                    return false;
                }
                let b = self.best[self.pos];
                if w == b {
                    self.pos += 1;
                    true
                } else if w < b {
                    self.buf.extend_from_slice(&self.best[..self.pos]);
                    self.buf.push(w);
                    self.state = CmpOutcome::Less;
                    true
                } else {
                    self.state = CmpOutcome::Greater;
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(best: &[u64], cand: &[u64], buf: &mut Vec<u64>) -> CmpOutcome {
        let mut sink = CmpSink::new(best, buf);
        for &w in cand {
            if !sink.word(w) {
                break;
            }
        }
        sink.finish()
    }

    #[test]
    fn equal_streams_compare_equal_without_copying() {
        let best = [1, 2, 3];
        let mut buf = vec![99];
        assert_eq!(stream(&best, &[1, 2, 3], &mut buf), CmpOutcome::Equal);
        assert!(buf.is_empty(), "no copy on the equal path");
    }

    #[test]
    fn smaller_candidate_wins_and_materializes_fully() {
        let best = [5, 7, 9, 11];
        let mut buf = Vec::new();
        assert_eq!(stream(&best, &[5, 6, 0, 42], &mut buf), CmpOutcome::Less);
        assert_eq!(buf, vec![5, 6, 0, 42], "prefix back-filled + recorded tail");
    }

    #[test]
    fn greater_candidate_aborts_at_first_losing_word() {
        let best = [5, 7, 9];
        let mut buf = Vec::new();
        let mut sink = CmpSink::new(&best, &mut buf);
        assert!(sink.word(5));
        assert!(!sink.word(8), "losing word aborts");
        assert!(!sink.word(0), "stays aborted");
        assert_eq!(sink.finish(), CmpOutcome::Greater);
        assert!(buf.is_empty());
    }

    #[test]
    fn skip_equal_advances_the_shared_prefix() {
        let best = [10, 20, 30, 40];
        let mut buf = Vec::new();
        let mut sink = CmpSink::new(&best, &mut buf);
        sink.skip_equal(2);
        assert!(sink.word(30));
        assert!(sink.word(39));
        assert_eq!(sink.finish(), CmpOutcome::Less);
        assert_eq!(buf, vec![10, 20, 30, 39]);
    }

    #[test]
    fn vec_sink_records_everything() {
        let mut v: Vec<u64> = Vec::new();
        assert!(v.word(1));
        assert!(v.words(&[2, 3]));
        assert_eq!(v, vec![1, 2, 3]);
    }
}
