//! Encoding a bandwidth-bounded graph as a descriptor (Lemma 3.2).
//!
//! Any *k*-node-bandwidth-bounded graph (with its natural node order) can
//! be written as a *k*-graph descriptor. The encoder walks the nodes in
//! order, keeps an ID for every node that still has edges to the future,
//! and recycles the ID of a node as soon as its last incident edge has been
//! listed — the constructive content of the paper's induction proof.

use crate::symbol::{Descriptor, IdNum, Symbol};
use scv_graph::ConstraintGraph;
use std::fmt;

/// Errors raised by the encoder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// The graph's bandwidth exceeds `k`: no free ID was available when a
    /// node had to be introduced.
    BandwidthExceeded {
        /// The node (0-based) that could not be assigned an ID.
        node: usize,
        /// The bound that was requested.
        k: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::BandwidthExceeded { node, k } => {
                write!(
                    f,
                    "node {} needs an ID but the graph is not {k}-bandwidth bounded",
                    node + 1
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encode `g` as a *k*-graph descriptor. Fails with
/// [`EncodeError::BandwidthExceeded`] iff `g.bandwidth() > k`.
///
/// Every node gets exactly one ID (the single-ID form of the Lemma 3.2
/// proof); the multi-ID `add-ID` mechanism is used by the observer, not by
/// this whole-graph encoder. Edge emission order matches the paper's
/// examples: when node `v` is introduced, all edges between `v` and earlier
/// nodes are listed, ordered by the earlier endpoint (in-edge before
/// out-edge on a tie).
pub fn encode(g: &ConstraintGraph, k: u32) -> Result<Descriptor, EncodeError> {
    let _t = scv_telemetry::timer(scv_telemetry::Phase::DescriptorEncode);
    let n = g.node_count();
    let mut d = Descriptor::new(k);
    // last_touch[u] = largest node index adjacent to u (or u if none):
    // after processing node last_touch[u], u's ID can be recycled.
    let mut last_touch: Vec<usize> = (0..n).collect();
    for (u, v, _) in g.edges() {
        let m = u.max(v);
        last_touch[u] = last_touch[u].max(m);
        last_touch[v] = last_touch[v].max(m);
    }
    // Free-ID pool, smallest first (so examples match the paper).
    let mut free: Vec<IdNum> = (1..=k + 1).rev().collect();
    let mut id_of: Vec<Option<IdNum>> = vec![None; n];

    for v in 0..n {
        let Some(id) = free.pop() else {
            return Err(EncodeError::BandwidthExceeded { node: v, k });
        };
        id_of[v] = Some(id);
        d.symbols.push(Symbol::Node {
            id,
            label: Some(g.label(v)),
        });

        // A self-loop is listed immediately after the node itself.
        if let Some(ann) = g.edge(v, v) {
            d.symbols.push(Symbol::Edge {
                from: id,
                to: id,
                label: Some(ann),
            });
        }

        // Edges between v and earlier nodes, ordered by earlier endpoint.
        let mut incident: Vec<(usize, bool)> = Vec::new(); // (other, is_in_edge)
        for &u in g.in_sources(v) {
            let u = u as usize;
            if u < v {
                incident.push((u, true));
            }
        }
        for &(t, _) in g.out_edges(v) {
            let t = t as usize;
            if t < v {
                incident.push((t, false));
            }
        }
        incident.sort_by_key(|&(u, is_in)| (u, !is_in));
        for (u, is_in) in incident {
            let uid = id_of[u].expect("earlier node with a future edge keeps its ID");
            let (from, to, ann) = if is_in {
                (uid, id, g.edge(u, v).expect("in-edge exists"))
            } else {
                (id, uid, g.edge(v, u).expect("out-edge exists"))
            };
            d.symbols.push(Symbol::Edge {
                from,
                to,
                label: Some(ann),
            });
        }

        // Recycle IDs of nodes whose last incident edge has now been listed
        // (including v itself if it has no future edges). Self-loops are
        // covered: a self-loop contributes last_touch[v] = v.
        for u in (0..=v).rev() {
            if last_touch[u] == v {
                if let Some(uid) = id_of[u].take() {
                    free.push(uid);
                }
            }
        }
        // Prefer to hand out the smallest free ID next.
        free.sort_unstable_by(|a, b| b.cmp(a));
    }
    debug_assert!(d.ids_in_range());
    scv_telemetry::add(
        scv_telemetry::Metric::DescriptorSymbolsEncoded,
        d.symbols.len() as u64,
    );
    Ok(d)
}

/// The "naive approach" of §3.2: number all nodes consecutively and never
/// recycle IDs — an `(n-1)`-graph descriptor whose IDs are the 1-based node
/// numbers.
pub fn naive_descriptor(g: &ConstraintGraph) -> Descriptor {
    let n = g.node_count();
    let mut d = Descriptor::new((n.max(1) - 1) as u32);
    for v in 0..n {
        d.symbols.push(Symbol::Node {
            id: (v + 1) as IdNum,
            label: Some(g.label(v)),
        });
        if let Some(ann) = g.edge(v, v) {
            d.symbols
                .push(Symbol::edge((v + 1) as IdNum, (v + 1) as IdNum, ann));
        }
        let mut incident: Vec<(usize, bool)> = Vec::new();
        for &u in g.in_sources(v) {
            let u = u as usize;
            if u < v {
                incident.push((u, true));
            }
        }
        for &(t, _) in g.out_edges(v) {
            let t = t as usize;
            if t < v {
                incident.push((t, false));
            }
        }
        incident.sort_by_key(|&(u, is_in)| (u, !is_in));
        for (u, is_in) in incident {
            let (from, to, ann) = if is_in {
                (u + 1, v + 1, g.edge(u, v).expect("in-edge exists"))
            } else {
                (v + 1, u + 1, g.edge(v, u).expect("out-edge exists"))
            };
            d.symbols
                .push(Symbol::edge(from as IdNum, to as IdNum, ann));
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use scv_graph::EdgeSet;
    use scv_types::{BlockId, Op, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }

    fn figure3_graph() -> ConstraintGraph {
        let mut g = ConstraintGraph::with_nodes([
            st(1, 1, 1),
            ld(2, 1, 1),
            st(1, 1, 2),
            ld(2, 1, 1),
            ld(2, 1, 2),
        ]);
        g.add_edge(0, 1, EdgeSet::INH);
        g.add_edge(0, 2, EdgeSet::PO_STO);
        g.add_edge(0, 3, EdgeSet::INH);
        g.add_edge(1, 3, EdgeSet::PO);
        g.add_edge(3, 2, EdgeSet::FORCED);
        g.add_edge(2, 4, EdgeSet::INH);
        g.add_edge(3, 4, EdgeSet::PO);
        g
    }

    #[test]
    fn naive_descriptor_matches_paper() {
        let g = figure3_graph();
        let d = naive_descriptor(&g);
        assert_eq!(
            d.to_string(),
            "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh, 3, ST(P1,B1,2), (1,3), po-STo, \
             4, LD(P2,B1,1), (1,4), inh, (2,4), po, (4,3), forced, \
             5, LD(P2,B1,2), (3,5), inh, (4,5), po"
        );
    }

    #[test]
    fn bandwidth3_descriptor_matches_paper() {
        let g = figure3_graph();
        let d = encode(&g, 3).unwrap();
        assert_eq!(
            d.to_string(),
            "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh, 3, ST(P1,B1,2), (1,3), po-STo, \
             4, LD(P2,B1,1), (1,4), inh, (2,4), po, (4,3), forced, \
             1, LD(P2,B1,2), (3,1), inh, (4,1), po"
        );
    }

    #[test]
    fn encode_below_bandwidth_fails() {
        let g = figure3_graph();
        assert_eq!(g.bandwidth(), 3);
        assert!(matches!(
            encode(&g, 2),
            Err(EncodeError::BandwidthExceeded { k: 2, .. })
        ));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let g = figure3_graph();
        for k in 3..=6 {
            let d = encode(&g, k).unwrap();
            let (dg, stats) = decode(&d).unwrap();
            let g2 = dg.to_constraint_graph().unwrap();
            assert_eq!(g2, g, "roundtrip at k={k}");
            assert!(stats.max_active <= (k + 1) as usize);
        }
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = ConstraintGraph::new();
        let d = encode(&g, 0).unwrap();
        assert!(d.symbols.is_empty());
        let (dg, _) = decode(&d).unwrap();
        assert_eq!(dg.node_count(), 0);
    }

    #[test]
    fn self_loop_roundtrip() {
        let mut g = ConstraintGraph::with_nodes([st(1, 1, 1)]);
        g.add_edge(0, 0, EdgeSet::FORCED);
        let d = encode(&g, 1).unwrap();
        let (dg, _) = decode(&d).unwrap();
        assert_eq!(dg.edges, vec![(0, 0, EdgeSet::FORCED)]);
        assert!(!dg.is_acyclic());
    }

    #[test]
    fn long_chain_needs_only_k1() {
        let mut g = ConstraintGraph::with_nodes((0..200).map(|_| st(1, 1, 1)));
        for i in 0..199 {
            g.add_edge(i, i + 1, EdgeSet::PO);
        }
        let d = encode(&g, 1).unwrap();
        let (dg, stats) = decode(&d).unwrap();
        assert_eq!(dg.node_count(), 200);
        assert_eq!(dg.edges.len(), 199);
        assert!(dg.is_acyclic());
        assert!(stats.max_active <= 2);
    }
}
