//! The prefix ID-set semantics of §3.2.
//!
//! [`IdTable`] maintains, for the prefix of a descriptor read so far, the
//! mapping from IDs to node numbers — equivalently, the ID-set of every
//! *active* node. It implements exactly the four inductive rules of the
//! paper's `ID-set(i, s')` definition:
//!
//! 1. a node descriptor with ID `I` removes `I` from its previous owner and
//!    assigns it to the new node;
//! 2. `add-ID(I, I')` adds `I'` to the owner of `I` (if any);
//! 3. `add-ID(I', I)` (i.e. the *second* parameter) removes `I` from its
//!    previous owner;
//! 4. all other IDs are unchanged.
//!
//! Both the decoder and the finite-state checkers are built on this table.

use crate::symbol::IdNum;

/// Mapping from IDs in `1..=k+1` to node numbers, with reverse ID-sets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IdTable {
    /// `owner[id-1]` = node currently holding `id`, if any.
    owner: Vec<Option<usize>>,
    /// Number of node descriptors seen (the next node number).
    nodes_seen: usize,
}

impl IdTable {
    /// A table over the ID space `1..=k+1`.
    pub fn new(k: u32) -> Self {
        IdTable {
            owner: vec![None; (k + 1) as usize],
            nodes_seen: 0,
        }
    }

    /// Size of the ID space (`k+1`).
    pub fn id_space(&self) -> usize {
        self.owner.len()
    }

    /// Number of node descriptors processed so far.
    pub fn nodes_seen(&self) -> usize {
        self.nodes_seen
    }

    /// The node currently holding `id`, if any.
    pub fn lookup(&self, id: IdNum) -> Option<usize> {
        self.check(id);
        self.owner[(id - 1) as usize]
    }

    /// The ID-set of node `i` with respect to the prefix read so far.
    pub fn id_set(&self, i: usize) -> Vec<IdNum> {
        (1..=self.owner.len() as IdNum)
            .filter(|&id| self.owner[(id - 1) as usize] == Some(i))
            .collect()
    }

    /// The set of active nodes (nodes with a non-empty ID-set).
    pub fn active_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.owner.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active_nodes().len()
    }

    /// Process a node descriptor with ID `id`; returns the (0-based) number
    /// of the new node and the node that lost `id`, if any.
    pub fn define_node(&mut self, id: IdNum) -> (usize, Option<usize>) {
        self.check(id);
        let node = self.nodes_seen;
        self.nodes_seen += 1;
        let evicted = self.owner[(id - 1) as usize].replace(node);
        // `replace` stored the new owner and returned the old one — but the
        // old owner may still be active under other IDs; the caller decides
        // whether it was fully evicted.
        let evicted = evicted.filter(|&e| !self.holds_any(e));
        (node, evicted)
    }

    /// Process `add-ID(of, add)`: returns `(gainer, fully_evicted)` where
    /// `gainer` is the node that gained `add` (if any node holds `of`), and
    /// `fully_evicted` is the previous owner of `add` if it now has an
    /// empty ID-set.
    pub fn add_id(&mut self, of: IdNum, add: IdNum) -> (Option<usize>, Option<usize>) {
        self.check(of);
        self.check(add);
        let gainer = self.owner[(of - 1) as usize];
        let prev = std::mem::replace(&mut self.owner[(add - 1) as usize], gainer);
        let fully_evicted = prev
            .filter(|&e| Some(e) != gainer)
            .filter(|&e| !self.holds_any(e));
        (gainer, fully_evicted)
    }

    /// Does node `i` hold any ID?
    pub fn holds_any(&self, i: usize) -> bool {
        self.owner.contains(&Some(i))
    }

    #[inline]
    fn check(&self, id: IdNum) {
        assert!(
            id >= 1 && (id as usize) <= self.owner.len(),
            "ID {id} out of range 1..={}",
            self.owner.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_descriptor_recycles_id() {
        let mut t = IdTable::new(1); // IDs 1..=2
        let (n0, ev) = t.define_node(1);
        assert_eq!((n0, ev), (0, None));
        let (n1, ev) = t.define_node(2);
        assert_eq!((n1, ev), (1, None));
        // Reusing ID 1 evicts node 0.
        let (n2, ev) = t.define_node(1);
        assert_eq!((n2, ev), (2, Some(0)));
        assert_eq!(t.lookup(1), Some(2));
        assert_eq!(t.lookup(2), Some(1));
        assert_eq!(t.active_nodes(), vec![1, 2]);
    }

    #[test]
    fn add_id_aliases_and_moves() {
        let mut t = IdTable::new(2); // IDs 1..=3
        t.define_node(1); // node 0
        t.define_node(2); // node 1
                          // Node 0 gains ID 3.
        let (gainer, ev) = t.add_id(1, 3);
        assert_eq!((gainer, ev), (Some(0), None));
        assert_eq!(t.id_set(0), vec![1, 3]);
        // Node 1 takes ID 3 away from node 0 (node 0 still holds ID 1).
        let (gainer, ev) = t.add_id(2, 3);
        assert_eq!((gainer, ev), (Some(1), None));
        assert_eq!(t.id_set(0), vec![1]);
        assert_eq!(t.id_set(1), vec![2, 3]);
        // Moving node 1's last ID fully evicts it... first drop ID 2.
        let (_, ev) = t.add_id(1, 2);
        assert_eq!(ev, None); // node 1 still holds 3
        let (_, ev) = t.add_id(1, 3);
        assert_eq!(ev, Some(1)); // node 1 now has an empty ID-set
        assert_eq!(t.id_set(0), vec![1, 2, 3]);
    }

    #[test]
    fn add_id_with_unknown_source_still_removes_target() {
        // Per the paper: add-ID(I, I') adds I' to the node with ID I "if
        // any", and I' is no longer associated with any other node.
        let mut t = IdTable::new(2);
        t.define_node(2); // node 0 holds ID 2
        let (gainer, ev) = t.add_id(1, 2); // no node holds ID 1
        assert_eq!(gainer, None);
        assert_eq!(ev, Some(0));
        assert_eq!(t.lookup(2), None);
        assert_eq!(t.active_count(), 0);
    }

    #[test]
    fn add_id_self_is_noop() {
        let mut t = IdTable::new(1);
        t.define_node(1);
        let (gainer, ev) = t.add_id(1, 1);
        assert_eq!((gainer, ev), (Some(0), None));
        assert_eq!(t.id_set(0), vec![1]);
    }

    #[test]
    fn eviction_only_when_last_id_lost() {
        let mut t = IdTable::new(2);
        t.define_node(1); // node 0
        t.add_id(1, 2); // node 0 holds {1,2}
        let (_, ev) = t.define_node(1); // node 1 takes ID 1
        assert_eq!(ev, None, "node 0 still holds ID 2");
        let (_, ev) = t.define_node(2); // node 2 takes ID 2
        assert_eq!(ev, Some(0), "node 0 fully evicted now");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_zero_rejected() {
        let mut t = IdTable::new(1);
        t.define_node(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_above_k_plus_one_rejected() {
        let mut t = IdTable::new(1);
        t.define_node(3);
    }
}
