//! The descriptor symbol alphabet and the [`Descriptor`] container.

use scv_graph::EdgeSet;
use scv_types::Op;
use std::fmt;

/// A node identification number, in `1..=k+1` for a *k*-graph descriptor.
pub type IdNum = u32;

/// One symbol of a *k*-graph descriptor.
///
/// The paper writes labels as separate alphabet symbols immediately
/// following the node or edge they belong to; since a label is only
/// meaningful in that position, we attach it to the node/edge symbol
/// directly (the textual rendering, [`fmt::Display`], matches the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Symbol {
    /// A node descriptor: a fresh node identified by `id`, optionally
    /// labeled with a trace operation.
    Node { id: IdNum, label: Option<Op> },
    /// An edge descriptor `(from, to)`, optionally labeled with edge
    /// annotations.
    Edge {
        from: IdNum,
        to: IdNum,
        label: Option<EdgeSet>,
    },
    /// `add-ID(of, add)`: the node currently holding `of` additionally
    /// gains the ID `add` (which is removed from any other node).
    AddId { of: IdNum, add: IdNum },
}

impl Symbol {
    /// Shorthand for a labeled node descriptor.
    pub fn node(id: IdNum, op: Op) -> Symbol {
        Symbol::Node {
            id,
            label: Some(op),
        }
    }

    /// Shorthand for a labeled edge descriptor.
    pub fn edge(from: IdNum, to: IdNum, ann: EdgeSet) -> Symbol {
        Symbol::Edge {
            from,
            to,
            label: Some(ann),
        }
    }

    /// The largest ID mentioned by the symbol.
    pub fn max_id(&self) -> IdNum {
        match *self {
            Symbol::Node { id, .. } => id,
            Symbol::Edge { from, to, .. } => from.max(to),
            Symbol::AddId { of, add } => of.max(add),
        }
    }

    /// The smallest ID mentioned by the symbol.
    pub fn min_id(&self) -> IdNum {
        match *self {
            Symbol::Node { id, .. } => id,
            Symbol::Edge { from, to, .. } => from.min(to),
            Symbol::AddId { of, add } => of.min(add),
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::Node { id, label: None } => write!(f, "{id}"),
            Symbol::Node {
                id,
                label: Some(op),
            } => write!(f, "{id}, {op}"),
            Symbol::Edge {
                from,
                to,
                label: None,
            } => write!(f, "({from},{to})"),
            Symbol::Edge {
                from,
                to,
                label: Some(a),
            } => write!(f, "({from},{to}), {a}"),
            Symbol::AddId { of, add } => write!(f, "add-ID({of},{add})"),
        }
    }
}

/// A complete *k*-graph descriptor: the bandwidth parameter `k` and the
/// symbol string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Descriptor {
    /// The bandwidth bound: IDs range over `1..=k+1`.
    pub k: u32,
    /// The symbol string.
    pub symbols: Vec<Symbol>,
}

impl Descriptor {
    /// An empty descriptor with the given bandwidth bound.
    pub fn new(k: u32) -> Self {
        Descriptor {
            k,
            symbols: Vec::new(),
        }
    }

    /// Number of node descriptors (= number of nodes of the graph).
    pub fn node_count(&self) -> usize {
        self.symbols
            .iter()
            .filter(|s| matches!(s, Symbol::Node { .. }))
            .count()
    }

    /// Are all IDs within `1..=k+1`?
    pub fn ids_in_range(&self) -> bool {
        self.symbols
            .iter()
            .all(|s| s.min_id() >= 1 && s.max_id() <= self.k + 1)
    }
}

impl fmt::Display for Descriptor {
    /// Paper notation: symbols joined by `", "`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.symbols {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_types::{BlockId, ProcId, Value};

    #[test]
    fn symbol_display_matches_paper() {
        let st = Op::store(ProcId(1), BlockId(1), Value(1));
        assert_eq!(Symbol::node(1, st).to_string(), "1, ST(P1,B1,1)");
        assert_eq!(Symbol::edge(1, 2, EdgeSet::INH).to_string(), "(1,2), inh");
        assert_eq!(
            Symbol::edge(1, 3, EdgeSet::PO_STO).to_string(),
            "(1,3), po-STo"
        );
        assert_eq!(Symbol::AddId { of: 2, add: 3 }.to_string(), "add-ID(2,3)");
        assert_eq!(Symbol::Node { id: 4, label: None }.to_string(), "4");
        assert_eq!(
            Symbol::Edge {
                from: 4,
                to: 1,
                label: None
            }
            .to_string(),
            "(4,1)"
        );
    }

    #[test]
    fn id_range_check() {
        let mut d = Descriptor::new(2);
        d.symbols.push(Symbol::Node { id: 3, label: None }); // k+1 = 3: ok
        assert!(d.ids_in_range());
        d.symbols.push(Symbol::Node { id: 4, label: None });
        assert!(!d.ids_in_range());
        let mut d0 = Descriptor::new(2);
        d0.symbols.push(Symbol::Node { id: 0, label: None });
        assert!(!d0.ids_in_range());
    }

    #[test]
    fn node_count_counts_only_nodes() {
        let mut d = Descriptor::new(3);
        d.symbols.push(Symbol::Node { id: 1, label: None });
        d.symbols.push(Symbol::Edge {
            from: 1,
            to: 1,
            label: None,
        });
        d.symbols.push(Symbol::AddId { of: 1, add: 2 });
        d.symbols.push(Symbol::Node { id: 2, label: None });
        assert_eq!(d.node_count(), 2);
    }
}
