//! Canonical renaming of auxiliary descriptor IDs.
//!
//! An observer's IDs split into two classes: location IDs `1..=L`, whose
//! identities are meaningful (they *are* the protocol's storage
//! locations), and auxiliary IDs above `L`, whose identities are
//! arbitrary pool choices. Two (observer, checker) pairs that differ only
//! by a permutation of the auxiliary IDs are bisimilar: every component of
//! the pipeline treats IDs as opaque table indices, so renaming them
//! consistently on both sides changes nothing observable.
//!
//! [`IdCanon`] assigns auxiliary IDs dense canonical numbers in first-use
//! order during a deterministic encoding traversal; the model checker
//! hashes product states through it, collapsing the aux-permutation orbit
//! to a single state (without it, state counts blow up by factors up to
//! `A!`).

use crate::symbol::IdNum;
use scv_types::SymPerm;
use std::collections::HashMap;

/// A symmetry view threaded through a canonical-encoding traversal.
///
/// Encoding a structure under a view produces exactly the byte sequence
/// that encoding the *renamed* structure would produce, without
/// materialising the rename: processor/block/value identities go through
/// `perm`, and location IDs go through the protocol-derived location maps.
/// `loc[old]` is the renamed location of `old` (1-based, index 0 unused);
/// `loc_inv` is its inverse, for traversals that iterate storage in
/// renamed-location order.
#[derive(Clone, Copy, Debug)]
pub struct SymView<'a> {
    /// The identity renaming over processors, blocks, and values.
    pub perm: &'a SymPerm,
    /// Forward location map: `loc[old_id] = new_id` for `1..=L`.
    pub loc: &'a [u32],
    /// Inverse location map: `loc_inv[new_id] = old_id` for `1..=L`.
    pub loc_inv: &'a [u32],
}

/// First-use canonical renaming for IDs above a fixed base, optionally
/// composed with a location permutation on the fixed IDs.
///
/// The location map is *borrowed*: one canonicalization per group element
/// per sealed state runs on the model checker's hot path, and the maps are
/// precomputed once per group element — cloning a `Vec<u32>` into every
/// `IdCanon` was pure allocator traffic.
#[derive(Clone, Debug)]
pub struct IdCanon<'a> {
    base: IdNum,
    map: HashMap<IdNum, u64>,
    locs: Option<&'a [u32]>,
}

impl<'a> IdCanon<'a> {
    /// IDs `1..=base` are fixed (returned as-is); higher IDs are renamed.
    pub fn new(base: IdNum) -> Self {
        IdCanon {
            base,
            map: HashMap::new(),
            locs: None,
        }
    }

    /// Like [`IdCanon::new`], but IDs `1..=base` map through `locs`
    /// (`locs[id]` for `id <= base`) instead of staying fixed — used when
    /// encoding a structure under a block/processor symmetry view whose
    /// location IDs are renamed by the protocol's location permutation.
    pub fn with_locs(base: IdNum, locs: &'a [u32]) -> Self {
        debug_assert!(locs.len() > base as usize, "locs must cover 1..=base");
        IdCanon {
            base,
            map: HashMap::new(),
            locs: Some(locs),
        }
    }

    /// Canonical number for `id`: itself (or its location-map image) if
    /// `id <= base`, otherwise `base + 1 + k` where `k` is the 0-based
    /// first-use index.
    pub fn canon(&mut self, id: IdNum) -> u64 {
        if id <= self.base {
            return match self.locs {
                Some(locs) => locs[id as usize] as u64,
                None => id as u64,
            };
        }
        let next = self.base as u64 + 1 + self.map.len() as u64;
        *self.map.entry(id).or_insert(next)
    }

    /// Reset to a fresh renaming (same base, same borrowed location map),
    /// keeping the map's allocation — scratch reuse for callers that seal
    /// many states in a row.
    pub fn reset(&mut self) {
        self.map.clear();
    }

    /// Reset to a fresh renaming over plain (identity) locations with a
    /// possibly different base, keeping the map's allocation. Lets one
    /// `IdCanon` stored in long-lived scratch serve every candidate of an
    /// expansion without a per-candidate map allocation.
    pub fn reset_with(&mut self, base: IdNum) {
        self.base = base;
        self.locs = None;
        self.map.clear();
    }

    /// Swap in a different borrowed location map (the renaming map is
    /// *not* cleared — pair with [`IdCanon::reset`]). Used by the orbit
    /// enumeration to reuse one renaming map across group elements.
    pub fn set_locs(&mut self, locs: &'a [u32]) {
        debug_assert!(locs.len() > self.base as usize, "locs must cover 1..=base");
        self.locs = Some(locs);
    }

    /// Number of auxiliary IDs renamed so far.
    pub fn renamed(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locations_are_fixed_points() {
        let mut c = IdCanon::new(4);
        for id in 1..=4 {
            assert_eq!(c.canon(id), id as u64);
        }
        assert_eq!(c.renamed(), 0);
    }

    #[test]
    fn aux_ids_renamed_in_first_use_order() {
        let mut c = IdCanon::new(2);
        assert_eq!(c.canon(9), 3);
        assert_eq!(c.canon(5), 4);
        assert_eq!(c.canon(9), 3, "stable on reuse");
        assert_eq!(c.canon(7), 5);
        assert_eq!(c.renamed(), 3);
    }

    #[test]
    fn location_map_renames_fixed_ids() {
        // Swap locations 1 and 2; location 3 stays. Aux IDs still rename
        // first-use.
        let mut c = IdCanon::with_locs(3, &[0, 2, 1, 3]);
        assert_eq!(c.canon(1), 2);
        assert_eq!(c.canon(2), 1);
        assert_eq!(c.canon(3), 3);
        assert_eq!(c.canon(9), 4);
        assert_eq!(c.canon(9), 4);
        assert_eq!(c.renamed(), 1);
    }

    #[test]
    fn permuted_aux_ids_encode_identically() {
        // The whole point: two traversals that use different concrete aux
        // IDs in the same order produce the same canonical sequence.
        let mut a = IdCanon::new(1);
        let mut b = IdCanon::new(1);
        let seq_a: Vec<u64> = [4, 9, 4, 1, 9].iter().map(|&i| a.canon(i)).collect();
        let seq_b: Vec<u64> = [7, 3, 7, 1, 3].iter().map(|&i| b.canon(i)).collect();
        assert_eq!(seq_a, seq_b);
    }
}
