//! Canonical renaming of auxiliary descriptor IDs.
//!
//! An observer's IDs split into two classes: location IDs `1..=L`, whose
//! identities are meaningful (they *are* the protocol's storage
//! locations), and auxiliary IDs above `L`, whose identities are
//! arbitrary pool choices. Two (observer, checker) pairs that differ only
//! by a permutation of the auxiliary IDs are bisimilar: every component of
//! the pipeline treats IDs as opaque table indices, so renaming them
//! consistently on both sides changes nothing observable.
//!
//! [`IdCanon`] assigns auxiliary IDs dense canonical numbers in first-use
//! order during a deterministic encoding traversal; the model checker
//! hashes product states through it, collapsing the aux-permutation orbit
//! to a single state (without it, state counts blow up by factors up to
//! `A!`).

use crate::symbol::IdNum;
use std::collections::HashMap;

/// First-use canonical renaming for IDs above a fixed base.
#[derive(Clone, Debug)]
pub struct IdCanon {
    base: IdNum,
    map: HashMap<IdNum, u64>,
}

impl IdCanon {
    /// IDs `1..=base` are fixed (returned as-is); higher IDs are renamed.
    pub fn new(base: IdNum) -> Self {
        IdCanon {
            base,
            map: HashMap::new(),
        }
    }

    /// Canonical number for `id`: itself if `id <= base`, otherwise
    /// `base + 1 + k` where `k` is the 0-based first-use index.
    pub fn canon(&mut self, id: IdNum) -> u64 {
        if id <= self.base {
            return id as u64;
        }
        let next = self.base as u64 + 1 + self.map.len() as u64;
        *self.map.entry(id).or_insert(next)
    }

    /// Number of auxiliary IDs renamed so far.
    pub fn renamed(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locations_are_fixed_points() {
        let mut c = IdCanon::new(4);
        for id in 1..=4 {
            assert_eq!(c.canon(id), id as u64);
        }
        assert_eq!(c.renamed(), 0);
    }

    #[test]
    fn aux_ids_renamed_in_first_use_order() {
        let mut c = IdCanon::new(2);
        assert_eq!(c.canon(9), 3);
        assert_eq!(c.canon(5), 4);
        assert_eq!(c.canon(9), 3, "stable on reuse");
        assert_eq!(c.canon(7), 5);
        assert_eq!(c.renamed(), 3);
    }

    #[test]
    fn permuted_aux_ids_encode_identically() {
        // The whole point: two traversals that use different concrete aux
        // IDs in the same order produce the same canonical sequence.
        let mut a = IdCanon::new(1);
        let mut b = IdCanon::new(1);
        let seq_a: Vec<u64> = [4, 9, 4, 1, 9].iter().map(|&i| a.canon(i)).collect();
        let seq_b: Vec<u64> = [7, 3, 7, 1, 3].iter().map(|&i| b.canon(i)).collect();
        assert_eq!(seq_a, seq_b);
    }
}
