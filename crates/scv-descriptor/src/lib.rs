//! *k*-graph descriptors (§3.2 of Condon & Hu, SPAA 2001).
//!
//! A *k*-node-bandwidth-bounded graph can be represented as a string of
//! node descriptors, edge descriptors, and `add-ID` symbols, over the ID
//! space `1..=k+1`, in a way that admits finite-state processing:
//!
//! * a **node descriptor** `I, label?` introduces a new node identified by
//!   `I` (any node previously holding `I` loses it);
//! * an **edge descriptor** `(I,J), label?` adds an edge between the nodes
//!   currently holding `I` and `J`;
//! * **`add-ID(I,J)`** adds `J` as an alias of the node holding `I`
//!   (removing `J` from any other node) — the observer of §4 uses this to
//!   model a stored value being *copied* between protocol locations, so
//!   that a ST node's ID set is exactly the set of locations holding its
//!   value.
//!
//! This crate provides the symbol alphabet ([`Symbol`]), the exact prefix
//! ID-set semantics of the paper ([`IdTable`]), a decoder back to a whole
//! graph ([`decode`]), and the Lemma 3.2 encoder from any bandwidth-bounded
//! [`ConstraintGraph`] to a descriptor ([`encode`]).

pub mod decode;
pub mod encode;
pub mod idcanon;
pub mod idtable;
pub mod sink;
pub mod symbol;

pub use decode::{decode, DecodeError, DecodeStats, DecodedGraph};
pub use encode::{encode, naive_descriptor, EncodeError};
pub use idcanon::{IdCanon, SymView};
pub use idtable::IdTable;
pub use sink::{CmpOutcome, CmpSink, EncSink};
pub use symbol::{Descriptor, IdNum, Symbol};

// Re-exported for convenience: descriptors are usually decoded back into
// constraint graphs.
pub use scv_graph::{ConstraintGraph, EdgeSet};
