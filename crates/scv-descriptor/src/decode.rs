//! Decoding a descriptor back into a whole graph.
//!
//! This materializes the graph `G` represented by a descriptor string per
//! the formal definition in §3.2: nodes in descriptor order, with an edge
//! `(i,j)` for every edge descriptor `(I,I')` whose IDs resolve to `i` and
//! `j` under the prefix ID-sets. Used to cross-check the streaming encoder,
//! observer, and checkers against whole-graph reference algorithms.

use crate::idtable::IdTable;
use crate::symbol::{Descriptor, Symbol};
use scv_graph::{ConstraintGraph, EdgeSet};
use scv_types::Op;
use std::fmt;

/// A decoded graph: node labels may be absent and edges may be unlabeled,
/// unlike [`ConstraintGraph`] which requires both.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DecodedGraph {
    /// Node labels in descriptor order (`None` = unlabeled node).
    pub labels: Vec<Option<Op>>,
    /// Edges `(from, to, annotations)`; the annotation set may be empty.
    pub edges: Vec<(usize, usize, EdgeSet)>,
}

impl DecodedGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Is the graph acyclic? (Kahn's algorithm.)
    pub fn is_acyclic(&self) -> bool {
        let n = self.labels.len();
        let mut indeg = vec![0u32; n];
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v, _) in &self.edges {
            adj[u].push(v as u32);
            indeg[v] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &v in &adj[u] {
                let v = v as usize;
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        seen == n
    }

    /// Convert to a [`ConstraintGraph`]; requires every node labeled and
    /// every edge to carry at least one annotation.
    pub fn to_constraint_graph(&self) -> Result<ConstraintGraph, DecodeError> {
        let mut labels = Vec::with_capacity(self.labels.len());
        for (i, l) in self.labels.iter().enumerate() {
            labels.push(l.ok_or(DecodeError::UnlabeledNode(i))?);
        }
        let mut g = ConstraintGraph::with_nodes(labels);
        for &(u, v, a) in &self.edges {
            if a.is_empty() {
                return Err(DecodeError::UnlabeledEdge(u, v));
            }
            g.add_edge(u, v, a);
        }
        Ok(g)
    }
}

/// Statistics gathered while decoding, for bandwidth experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DecodeStats {
    /// Maximum number of simultaneously active nodes observed.
    pub max_active: usize,
    /// Total number of symbols processed.
    pub symbols: usize,
}

/// Errors raised while decoding a descriptor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// An edge descriptor mentioned an ID not currently held by any node.
    DanglingEdge { position: usize },
    /// An ID outside `1..=k+1`.
    IdOutOfRange { position: usize },
    /// [`DecodedGraph::to_constraint_graph`]: node without a label.
    UnlabeledNode(usize),
    /// [`DecodedGraph::to_constraint_graph`]: edge without annotations.
    UnlabeledEdge(usize, usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::DanglingEdge { position } => {
                write!(
                    f,
                    "edge descriptor at symbol {position} references an unassigned ID"
                )
            }
            DecodeError::IdOutOfRange { position } => {
                write!(f, "symbol {position} uses an ID outside 1..=k+1")
            }
            DecodeError::UnlabeledNode(i) => write!(f, "node {} has no label", i + 1),
            DecodeError::UnlabeledEdge(u, v) => {
                write!(f, "edge ({},{}) has no annotations", u + 1, v + 1)
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode a descriptor into the graph it represents, together with
/// decoding statistics.
pub fn decode(d: &Descriptor) -> Result<(DecodedGraph, DecodeStats), DecodeError> {
    let _t = scv_telemetry::timer(scv_telemetry::Phase::DescriptorDecode);
    scv_telemetry::add(
        scv_telemetry::Metric::DescriptorSymbolsDecoded,
        d.symbols.len() as u64,
    );
    let mut table = IdTable::new(d.k);
    let mut g = DecodedGraph::default();
    let mut stats = DecodeStats::default();
    let in_range = |id: u32| id >= 1 && id <= d.k + 1;
    for (pos, sym) in d.symbols.iter().enumerate() {
        stats.symbols += 1;
        if !in_range(sym.min_id()) || !in_range(sym.max_id()) {
            return Err(DecodeError::IdOutOfRange { position: pos });
        }
        match *sym {
            Symbol::Node { id, label } => {
                table.define_node(id);
                g.labels.push(label);
            }
            Symbol::AddId { of, add } => {
                table.add_id(of, add);
            }
            Symbol::Edge { from, to, label } => {
                let (Some(u), Some(v)) = (table.lookup(from), table.lookup(to)) else {
                    return Err(DecodeError::DanglingEdge { position: pos });
                };
                // Merge annotations with an existing parallel edge, as
                // ConstraintGraph does.
                let ann = label.unwrap_or(EdgeSet::EMPTY);
                if let Some(e) = g.edges.iter_mut().find(|(a, b, _)| (*a, *b) == (u, v)) {
                    e.2 |= ann;
                } else {
                    g.edges.push((u, v, ann));
                }
            }
        }
        stats.max_active = stats.max_active.max(table.active_count());
    }
    Ok((g, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_types::{BlockId, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }

    /// The paper's 3-bandwidth descriptor for Figure 3 (§3.2).
    fn figure3_descriptor() -> Descriptor {
        let mut d = Descriptor::new(3);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, ld(2, 1, 1)),
            Symbol::edge(1, 2, EdgeSet::INH),
            Symbol::node(3, st(1, 1, 2)),
            Symbol::edge(1, 3, EdgeSet::PO_STO),
            Symbol::node(4, ld(2, 1, 1)),
            Symbol::edge(1, 4, EdgeSet::INH),
            Symbol::edge(2, 4, EdgeSet::PO),
            Symbol::edge(4, 3, EdgeSet::FORCED),
            Symbol::node(1, ld(2, 1, 2)), // ID 1 recycled for node 5
            Symbol::edge(3, 1, EdgeSet::INH),
            Symbol::edge(4, 1, EdgeSet::PO),
        ];
        d
    }

    #[test]
    fn figure3_descriptor_decodes_to_figure3_graph() {
        let d = figure3_descriptor();
        let (g, stats) = decode(&d).unwrap();
        assert_eq!(g.node_count(), 5);
        let cg = g.to_constraint_graph().unwrap();
        assert_eq!(cg.edge(0, 1), Some(EdgeSet::INH));
        assert_eq!(cg.edge(0, 2), Some(EdgeSet::PO_STO));
        assert_eq!(cg.edge(0, 3), Some(EdgeSet::INH));
        assert_eq!(cg.edge(1, 3), Some(EdgeSet::PO));
        assert_eq!(cg.edge(3, 2), Some(EdgeSet::FORCED));
        assert_eq!(cg.edge(2, 4), Some(EdgeSet::INH));
        assert_eq!(cg.edge(3, 4), Some(EdgeSet::PO));
        assert_eq!(cg.edge_count(), 7);
        assert!(cg.is_acyclic());
        // At most 4 = k+1 nodes were ever active.
        assert!(stats.max_active <= 4);
    }

    #[test]
    fn figure3_descriptor_renders_like_paper() {
        let d = figure3_descriptor();
        assert_eq!(
            d.to_string(),
            "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh, 3, ST(P1,B1,2), (1,3), po-STo, \
             4, LD(P2,B1,1), (1,4), inh, (2,4), po, (4,3), forced, \
             1, LD(P2,B1,2), (3,1), inh, (4,1), po"
        );
    }

    #[test]
    fn add_id_routes_edges_to_aliased_node() {
        // Node 0 gains alias 2; an edge (2,3) then targets node 0's alias.
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::Node { id: 1, label: None },
            Symbol::AddId { of: 1, add: 2 },
            Symbol::Node { id: 3, label: None },
            Symbol::Edge {
                from: 3,
                to: 2,
                label: None,
            },
        ];
        let (g, _) = decode(&d).unwrap();
        assert_eq!(g.edges, vec![(1, 0, EdgeSet::EMPTY)]);
    }

    #[test]
    fn dangling_edge_detected() {
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::Node { id: 1, label: None },
            Symbol::Edge {
                from: 1,
                to: 2,
                label: None,
            },
        ];
        assert_eq!(decode(&d), Err(DecodeError::DanglingEdge { position: 1 }));
    }

    #[test]
    fn id_out_of_range_detected() {
        let mut d = Descriptor::new(1);
        d.symbols = vec![Symbol::Node { id: 3, label: None }];
        assert_eq!(decode(&d), Err(DecodeError::IdOutOfRange { position: 0 }));
    }

    #[test]
    fn unlabeled_conversion_errors() {
        let mut d = Descriptor::new(1);
        d.symbols = vec![Symbol::Node { id: 1, label: None }];
        let (g, _) = decode(&d).unwrap();
        assert_eq!(g.to_constraint_graph(), Err(DecodeError::UnlabeledNode(0)));

        let mut d = Descriptor::new(1);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(1, 1, 2)),
            Symbol::Edge {
                from: 1,
                to: 2,
                label: None,
            },
        ];
        let (g, _) = decode(&d).unwrap();
        assert_eq!(
            g.to_constraint_graph(),
            Err(DecodeError::UnlabeledEdge(0, 1))
        );
    }

    #[test]
    fn parallel_edge_annotations_merge() {
        let mut d = Descriptor::new(1);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(1, 1, 2)),
            Symbol::edge(1, 2, EdgeSet::PO),
            Symbol::edge(1, 2, EdgeSet::STO),
        ];
        let (g, _) = decode(&d).unwrap();
        assert_eq!(g.edges, vec![(0, 1, EdgeSet::PO_STO)]);
    }

    #[test]
    fn cyclic_decoded_graph_detected() {
        let mut d = Descriptor::new(1);
        d.symbols = vec![
            Symbol::Node { id: 1, label: None },
            Symbol::Node { id: 2, label: None },
            Symbol::Edge {
                from: 1,
                to: 2,
                label: None,
            },
            Symbol::Edge {
                from: 2,
                to: 1,
                label: None,
            },
        ];
        let (g, _) = decode(&d).unwrap();
        assert!(!g.is_acyclic());
    }

    #[test]
    fn max_active_tracks_bandwidth() {
        let d = figure3_descriptor();
        let (_, stats) = decode(&d).unwrap();
        // Nodes 1..4 are simultaneously active before ID 1 is recycled.
        assert_eq!(stats.max_active, 4);
    }
}
