//! The edge annotation constraints of §3.1, checked globally.
//!
//! [`validate_constraint_graph`] decides whether an annotated graph is a
//! *constraint graph* for a trace: constraints 2–5 of §3.1 (constraint 1 is
//! enforced structurally by [`EdgeSet`] being non-empty on every edge). This
//! is the whole-graph reference implementation; the finite-state checker in
//! `scv-checker` must agree with it on every descriptor stream, which is how
//! the two are differentially tested.

use crate::edge::EdgeSet;
use crate::graph::ConstraintGraph;
use scv_types::Trace;
use std::fmt;

/// A violation of one of the §3.1 edge annotation constraints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AxiomViolation {
    /// The graph's node labels do not match the trace.
    LabelsMismatch,
    /// Constraint 2: program order edges of some processor do not form a
    /// total order consistent with trace order.
    ProgramOrder { detail: String },
    /// Constraint 3: ST order edges of some block do not form a total order
    /// over exactly the STs to that block.
    StOrder { detail: String },
    /// Constraint 4: inheritance edges are not exactly one per non-⊥ LD,
    /// each from a matching ST.
    Inheritance { detail: String },
    /// Constraint 5(a): a (store, load, next-store) triple lacks its forced
    /// edge (directly or via a program-order path to a later inheritor).
    Forced {
        store: usize,
        load: usize,
        next_store: usize,
    },
    /// Constraint 5(b): a `LD(P,B,⊥)` lacks a forced path to the first ST
    /// in the block's ST order.
    ForcedBottom { load: usize, first_store: usize },
}

impl fmt::Display for AxiomViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxiomViolation::LabelsMismatch => write!(f, "node labels do not match trace"),
            AxiomViolation::ProgramOrder { detail } => write!(f, "program order: {detail}"),
            AxiomViolation::StOrder { detail } => write!(f, "ST order: {detail}"),
            AxiomViolation::Inheritance { detail } => write!(f, "inheritance: {detail}"),
            AxiomViolation::Forced {
                store,
                load,
                next_store,
            } => write!(
                f,
                "forced: triple (ST {}, LD {}, ST {}) lacks a forced edge",
                store + 1,
                load + 1,
                next_store + 1
            ),
            AxiomViolation::ForcedBottom { load, first_store } => write!(
                f,
                "forced(⊥): LD {} lacks a forced path to first ST {}",
                load + 1,
                first_store + 1
            ),
        }
    }
}

/// Extract, per processor index, the node numbers in trace order.
fn per_proc_nodes(trace: &Trace) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = Vec::new();
    for (i, op) in trace.iter().enumerate() {
        let p = op.proc.idx();
        if out.len() <= p {
            out.resize(p + 1, Vec::new());
        }
        out[p].push(i);
    }
    out
}

/// Check constraint 2 (program order) or 3 (ST order): `edges` restricted to
/// `members` must form a Hamiltonian path over `members`. For program order
/// the path must additionally visit `members` in their given (trace) order.
fn check_total_order(
    members: &[usize],
    edges: &[(usize, usize)],
    require_trace_order: bool,
    what: &str,
) -> Result<Vec<usize>, String> {
    let u = members.len();
    if u == 0 {
        return if edges.is_empty() {
            Ok(Vec::new())
        } else {
            Err(format!("{what}: edges between non-members"))
        };
    }
    if edges.len() != u - 1 {
        return Err(format!(
            "{what}: expected {} edges over {} members, found {}",
            u - 1,
            u,
            edges.len()
        ));
    }
    let is_member = |x: usize| members.contains(&x);
    let mut succ: Vec<Option<usize>> = vec![None; u];
    let mut has_pred = vec![false; u];
    let pos = |x: usize| members.iter().position(|&m| m == x);
    for &(a, b) in edges {
        if !is_member(a) || !is_member(b) {
            return Err(format!(
                "{what}: edge ({},{}) leaves the member set",
                a + 1,
                b + 1
            ));
        }
        let (ia, ib) = (pos(a).unwrap(), pos(b).unwrap());
        if succ[ia].is_some() {
            return Err(format!("{what}: node {} has two successors", a + 1));
        }
        if has_pred[ib] {
            return Err(format!("{what}: node {} has two predecessors", b + 1));
        }
        succ[ia] = Some(ib);
        has_pred[ib] = true;
    }
    let mut starts = (0..u).filter(|&i| !has_pred[i]);
    let start = starts
        .next()
        .ok_or_else(|| format!("{what}: no start node (cycle)"))?;
    if starts.next().is_some() {
        return Err(format!("{what}: disconnected order"));
    }
    let mut chain = Vec::with_capacity(u);
    let mut cur = Some(start);
    while let Some(i) = cur {
        chain.push(members[i]);
        cur = succ[i];
    }
    if chain.len() != u {
        return Err(format!("{what}: order has a cycle"));
    }
    if require_trace_order && chain != members {
        return Err(format!("{what}: order not consistent with trace order"));
    }
    Ok(chain)
}

/// Compute, for each node, the set of nodes reachable by following only
/// program-order edges (used for the constraint-5 path provisos). Returns
/// the po-successor of each node, if any (po edges form paths after
/// constraint 2 has been validated).
fn po_successors(g: &ConstraintGraph) -> Vec<Option<usize>> {
    let mut succ = vec![None; g.node_count()];
    for (u, v) in g.edges_with(EdgeSet::PO) {
        succ[u] = Some(v);
    }
    succ
}

/// Validate that `g` is a constraint graph for `trace` per §3.1
/// (constraints 2–5). Acyclicity is *not* part of being a constraint graph
/// and is checked separately ([`ConstraintGraph::is_acyclic`]).
pub fn validate_constraint_graph(g: &ConstraintGraph, trace: &Trace) -> Result<(), AxiomViolation> {
    let n = trace.len();
    if g.node_count() != n || (0..n).any(|i| g.label(i) != trace[i]) {
        return Err(AxiomViolation::LabelsMismatch);
    }

    // Constraint 2: per-processor program order.
    let po_edges: Vec<(usize, usize)> = g.edges_with(EdgeSet::PO).collect();
    for (pidx, members) in per_proc_nodes(trace).iter().enumerate() {
        let mine: Vec<(usize, usize)> = po_edges
            .iter()
            .copied()
            .filter(|&(u, _)| trace[u].proc.idx() == pidx)
            .collect();
        check_total_order(members, &mine, true, &format!("P{}", pidx + 1))
            .map_err(|detail| AxiomViolation::ProgramOrder { detail })?;
    }
    // No po edge may join different processors.
    for &(u, v) in &po_edges {
        if trace[u].proc != trace[v].proc {
            return Err(AxiomViolation::ProgramOrder {
                detail: format!("edge ({},{}) joins different processors", u + 1, v + 1),
            });
        }
    }

    // Constraint 3: per-block ST order; collect the validated chains.
    let sto_edges: Vec<(usize, usize)> = g.edges_with(EdgeSet::STO).collect();
    for &(u, v) in &sto_edges {
        if !trace[u].is_store() || !trace[v].is_store() || trace[u].block != trace[v].block {
            return Err(AxiomViolation::StOrder {
                detail: format!("edge ({},{}) is not between STs to one block", u + 1, v + 1),
            });
        }
    }
    let mut st_chains: Vec<(scv_types::BlockId, Vec<usize>)> = Vec::new();
    {
        let mut blocks: Vec<scv_types::BlockId> = trace
            .iter()
            .filter(|o| o.is_store())
            .map(|o| o.block)
            .collect();
        blocks.sort();
        blocks.dedup();
        for b in blocks {
            let members = trace.stores_to(b);
            let mine: Vec<(usize, usize)> = sto_edges
                .iter()
                .copied()
                .filter(|&(u, _)| trace[u].block == b)
                .collect();
            let chain = check_total_order(&members, &mine, false, &format!("{b}"))
                .map_err(|detail| AxiomViolation::StOrder { detail })?;
            st_chains.push((b, chain));
        }
    }

    // Constraint 4: inheritance edges.
    let inh_edges: Vec<(usize, usize)> = g.edges_with(EdgeSet::INH).collect();
    let mut inh_from: Vec<Option<usize>> = vec![None; n];
    for &(u, v) in &inh_edges {
        let (src, dst) = (trace[u], trace[v]);
        if !dst.is_load() || dst.value.is_bottom() {
            return Err(AxiomViolation::Inheritance {
                detail: format!("edge into node {} which is not a non-⊥ LD", v + 1),
            });
        }
        if !src.is_store() || src.block != dst.block || src.value != dst.value {
            return Err(AxiomViolation::Inheritance {
                detail: format!(
                    "node {} inherits from {} which is not ST(*,{},{})",
                    v + 1,
                    u + 1,
                    dst.block,
                    dst.value
                ),
            });
        }
        if inh_from[v].is_some() {
            return Err(AxiomViolation::Inheritance {
                detail: format!("node {} has two inheritance edges", v + 1),
            });
        }
        inh_from[v] = Some(u);
    }
    for (v, op) in trace.iter().enumerate() {
        if op.is_load() && !op.value.is_bottom() && inh_from[v].is_none() {
            return Err(AxiomViolation::Inheritance {
                detail: format!("LD node {} has no inheritance edge", v + 1),
            });
        }
    }

    // Constraint 5: forced edges. Precompute po successor chain.
    let po_succ = po_successors(g);
    let has_forced = |a: usize, b: usize| g.edge(a, b).is_some_and(|e| e.contains(EdgeSet::FORCED));

    // 5(a): for each ST-order edge (i,k) and inheritance edge (i,j), some
    // node j' reachable from j by po edges (j' = j allowed) also inherits
    // from i and has a forced edge to k.
    for (b, chain) in &st_chains {
        let _ = b;
        for w in chain.windows(2) {
            let (i, k) = (w[0], w[1]);
            for &(src, j) in &inh_edges {
                if src != i {
                    continue;
                }
                let mut cur = Some(j);
                let mut ok = false;
                while let Some(jp) = cur {
                    if inh_from[jp] == Some(i) && has_forced(jp, k) {
                        ok = true;
                        break;
                    }
                    cur = po_succ[jp];
                }
                if !ok {
                    return Err(AxiomViolation::Forced {
                        store: i,
                        load: j,
                        next_store: k,
                    });
                }
            }
        }
    }

    // 5(b): each LD(P,B,⊥) has a forced edge on a (po) path to the first
    // node in B's ST order. Vacuous if B has no stores.
    for (b, chain) in &st_chains {
        let first = chain[0];
        for (j, op) in trace.iter().enumerate() {
            if !(op.is_load() && op.value.is_bottom() && op.block == *b) {
                continue;
            }
            let mut cur = Some(j);
            let mut ok = false;
            while let Some(jp) = cur {
                let lbl = trace[jp];
                let same_kind = lbl.is_load() && lbl.value.is_bottom() && lbl.block == *b;
                if same_kind && has_forced(jp, first) {
                    ok = true;
                    break;
                }
                cur = po_succ[jp];
            }
            if !ok {
                return Err(AxiomViolation::ForcedBottom {
                    load: j,
                    first_store: first,
                });
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_types::{BlockId, Op, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }
    fn ldb(p: u8, b: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value::BOTTOM)
    }

    fn figure3_trace() -> Trace {
        Trace::from_ops([
            st(1, 1, 1),
            ld(2, 1, 1),
            st(1, 1, 2),
            ld(2, 1, 1),
            ld(2, 1, 2),
        ])
    }

    fn figure3_graph() -> ConstraintGraph {
        let t = figure3_trace();
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(0, 1, EdgeSet::INH);
        g.add_edge(0, 2, EdgeSet::PO_STO);
        g.add_edge(0, 3, EdgeSet::INH);
        g.add_edge(1, 3, EdgeSet::PO);
        g.add_edge(3, 2, EdgeSet::FORCED);
        g.add_edge(2, 4, EdgeSet::INH);
        g.add_edge(3, 4, EdgeSet::PO);
        g
    }

    #[test]
    fn figure3_satisfies_all_axioms() {
        let t = figure3_trace();
        let g = figure3_graph();
        assert_eq!(validate_constraint_graph(&g, &t), Ok(()));
    }

    #[test]
    fn node_2_is_covered_by_path_proviso() {
        // In Figure 3, the triple (1,2,3) has no direct forced edge 2->3;
        // it is satisfied via the po path 2 -> 4 and the forced edge 4 -> 3.
        let g = figure3_graph();
        assert_eq!(g.edge(1, 2), None);
        assert!(g.edge(3, 2).unwrap().contains(EdgeSet::FORCED));
    }

    #[test]
    fn missing_forced_edge_detected() {
        let t = figure3_trace();
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(0, 1, EdgeSet::INH);
        g.add_edge(0, 2, EdgeSet::PO_STO);
        g.add_edge(0, 3, EdgeSet::INH);
        g.add_edge(1, 3, EdgeSet::PO);
        // forced edge (4,3) omitted
        g.add_edge(2, 4, EdgeSet::INH);
        g.add_edge(3, 4, EdgeSet::PO);
        assert!(matches!(
            validate_constraint_graph(&g, &t),
            Err(AxiomViolation::Forced {
                store: 0,
                next_store: 2,
                ..
            })
        ));
    }

    #[test]
    fn missing_inheritance_edge_detected() {
        let t = Trace::from_ops([st(1, 1, 1), ld(2, 1, 1)]);
        let g = ConstraintGraph::with_nodes(t.iter().copied());
        assert!(matches!(
            validate_constraint_graph(&g, &t),
            Err(AxiomViolation::Inheritance { .. })
        ));
    }

    #[test]
    fn inheritance_value_mismatch_detected() {
        let t = Trace::from_ops([st(1, 1, 1), ld(2, 1, 2)]);
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(0, 1, EdgeSet::INH);
        assert!(matches!(
            validate_constraint_graph(&g, &t),
            Err(AxiomViolation::Inheritance { .. })
        ));
    }

    #[test]
    fn double_inheritance_detected() {
        let t = Trace::from_ops([st(1, 1, 1), st(2, 1, 1), ld(1, 1, 1)]);
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(0, 2, EdgeSet::INH | EdgeSet::PO);
        g.add_edge(1, 2, EdgeSet::INH);
        g.add_edge(0, 1, EdgeSet::STO);
        assert!(matches!(
            validate_constraint_graph(&g, &t),
            Err(AxiomViolation::Inheritance { .. })
        ));
    }

    #[test]
    fn program_order_must_match_trace_order() {
        let t = Trace::from_ops([st(1, 1, 1), st(1, 1, 2)]);
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(1, 0, EdgeSet::PO); // wrong direction
        g.add_edge(0, 1, EdgeSet::STO);
        assert!(matches!(
            validate_constraint_graph(&g, &t),
            Err(AxiomViolation::ProgramOrder { .. })
        ));
    }

    #[test]
    fn missing_po_edge_detected() {
        let t = Trace::from_ops([st(1, 1, 1), st(1, 1, 2)]);
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(0, 1, EdgeSet::STO); // po edge missing
        assert!(matches!(
            validate_constraint_graph(&g, &t),
            Err(AxiomViolation::ProgramOrder { .. })
        ));
    }

    #[test]
    fn st_order_may_differ_from_trace_order() {
        // STs by different processors to the same block, serialized in the
        // opposite of trace order — legal for constraint 3.
        let t = Trace::from_ops([st(1, 1, 1), st(2, 1, 2)]);
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(1, 0, EdgeSet::STO);
        assert_eq!(validate_constraint_graph(&g, &t), Ok(()));
    }

    #[test]
    fn st_order_cycle_detected() {
        let t = Trace::from_ops([st(1, 1, 1), st(2, 1, 2)]);
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(0, 1, EdgeSet::STO);
        g.add_edge(1, 0, EdgeSet::STO);
        assert!(matches!(
            validate_constraint_graph(&g, &t),
            Err(AxiomViolation::StOrder { .. })
        ));
    }

    #[test]
    fn bottom_load_needs_forced_path_to_first_store() {
        let t = Trace::from_ops([ldb(2, 1), st(1, 1, 1)]);
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        // No forced edge from the ⊥ load to the first store: violation.
        assert!(matches!(
            validate_constraint_graph(&g, &t),
            Err(AxiomViolation::ForcedBottom {
                load: 0,
                first_store: 1
            })
        ));
        g.add_edge(0, 1, EdgeSet::FORCED);
        assert_eq!(validate_constraint_graph(&g, &t), Ok(()));
    }

    #[test]
    fn bottom_load_vacuous_without_stores() {
        let t = Trace::from_ops([ldb(1, 1), ldb(2, 1)]);
        let g = ConstraintGraph::with_nodes(t.iter().copied());
        assert_eq!(validate_constraint_graph(&g, &t), Ok(()));
    }

    #[test]
    fn bottom_load_covered_by_po_path() {
        // Two ⊥ loads by P2; only the later one carries the forced edge.
        let t = Trace::from_ops([ldb(2, 1), ldb(2, 1), st(1, 1, 1)]);
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(0, 1, EdgeSet::PO);
        g.add_edge(1, 2, EdgeSet::FORCED);
        assert_eq!(validate_constraint_graph(&g, &t), Ok(()));
    }

    #[test]
    fn labels_mismatch_detected() {
        let t = figure3_trace();
        let g = ConstraintGraph::with_nodes([st(1, 1, 1)]);
        assert_eq!(
            validate_constraint_graph(&g, &t),
            Err(AxiomViolation::LabelsMismatch)
        );
    }
}
