//! Edge annotations (§3.1, edge annotation constraint 1).
//!
//! Every edge of a constraint graph carries one or more of the four
//! annotations *inheritance*, *program order*, *ST order*, *forced*. The
//! observer alphabet of §3.4 names the combinations that occur in practice
//! (`inh`, `po`, `STo`, `forced`, `po-STo`, `po-inh`, `po-forced`); we
//! represent the full power set as a bit set.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// A non-empty set of edge annotations, stored as a bit set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct EdgeSet(u8);

impl EdgeSet {
    /// No annotations. Constraint 1 forbids storing such an edge in a graph;
    /// this value exists only as the identity for [`BitOr`].
    pub const EMPTY: EdgeSet = EdgeSet(0);
    /// Inheritance edge: from the ST a LD got its value from, to that LD.
    pub const INH: EdgeSet = EdgeSet(1);
    /// Program order edge: consecutive operations of one processor.
    pub const PO: EdgeSet = EdgeSet(2);
    /// ST order edge: consecutive STs to one block in the serial order.
    pub const STO: EdgeSet = EdgeSet(4);
    /// Forced edge: keeps later STs to a block after the LDs that read the
    /// previous ST's value (constraint 5).
    pub const FORCED: EdgeSet = EdgeSet(8);

    /// The combined `po-STo` annotation of the observer alphabet.
    pub const PO_STO: EdgeSet = EdgeSet(2 | 4);
    /// The combined `po-inh` annotation of the observer alphabet.
    pub const PO_INH: EdgeSet = EdgeSet(2 | 1);
    /// The combined `po-forced` annotation of the observer alphabet.
    pub const PO_FORCED: EdgeSet = EdgeSet(2 | 8);

    /// Is the set empty (no annotations)?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Does the set contain every annotation in `other`?
    #[inline]
    pub fn contains(self, other: EdgeSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Raw bits, for compact serialization.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuild from raw bits (only the low 4 bits are meaningful).
    #[inline]
    pub fn from_bits(bits: u8) -> EdgeSet {
        EdgeSet(bits & 0xf)
    }

    /// All sixteen subsets, for exhaustive tests.
    pub fn all_subsets() -> impl Iterator<Item = EdgeSet> {
        (0..16u8).map(EdgeSet)
    }
}

impl BitOr for EdgeSet {
    type Output = EdgeSet;
    #[inline]
    fn bitor(self, rhs: EdgeSet) -> EdgeSet {
        EdgeSet(self.0 | rhs.0)
    }
}

impl BitOrAssign for EdgeSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: EdgeSet) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for EdgeSet {
    /// Paper notation: annotations joined by `-`, e.g. `po-STo`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(none)");
        }
        let mut first = true;
        let mut put = |name: &str, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, "-")?;
            }
            first = false;
            write!(f, "{name}")
        };
        // Order chosen to reproduce the paper's combined labels (po-STo,
        // po-inh, po-forced) with `po` first, and `inh` first otherwise.
        if self.contains(EdgeSet::PO) {
            put("po", f)?;
        }
        if self.contains(EdgeSet::INH) {
            put("inh", f)?;
        }
        if self.contains(EdgeSet::STO) {
            put("STo", f)?;
        }
        if self.contains(EdgeSet::FORCED) {
            put("forced", f)?;
        }
        Ok(())
    }
}

impl fmt::Debug for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_containment() {
        let e = EdgeSet::PO | EdgeSet::STO;
        assert!(e.contains(EdgeSet::PO));
        assert!(e.contains(EdgeSet::STO));
        assert!(!e.contains(EdgeSet::INH));
        assert!(e.contains(EdgeSet::EMPTY));
        assert_eq!(e, EdgeSet::PO_STO);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(EdgeSet::INH.to_string(), "inh");
        assert_eq!(EdgeSet::PO.to_string(), "po");
        assert_eq!(EdgeSet::STO.to_string(), "STo");
        assert_eq!(EdgeSet::FORCED.to_string(), "forced");
        assert_eq!(EdgeSet::PO_STO.to_string(), "po-STo");
        assert_eq!(EdgeSet::PO_INH.to_string(), "po-inh");
        assert_eq!(EdgeSet::PO_FORCED.to_string(), "po-forced");
    }

    #[test]
    fn bits_roundtrip() {
        for e in EdgeSet::all_subsets() {
            assert_eq!(EdgeSet::from_bits(e.bits()), e);
        }
        assert_eq!(EdgeSet::all_subsets().count(), 16);
    }

    #[test]
    fn or_assign_accumulates() {
        let mut e = EdgeSet::EMPTY;
        assert!(e.is_empty());
        e |= EdgeSet::FORCED;
        e |= EdgeSet::PO;
        assert_eq!(e, EdgeSet::PO_FORCED);
    }
}
