//! Whole-trace baseline checker in the style of Gibbons & Korach.
//!
//! The observer of section 4 supplies two pieces of reordering information:
//! which ST each LD inherits its value from, and the serial order of the STs
//! to each block. Packaged as a [`Witness`], that information determines a
//! unique *saturated* constraint graph (all forced edges added directly),
//! and the trace has a serial reordering consistent with the witness iff
//! that graph is acyclic.
//!
//! This module materializes the whole graph in memory — `O(n)` space for a
//! length-`n` trace — and is the baseline that the finite-state streaming
//! checker of `scv-checker` is differentially tested and benchmarked
//! against.

use crate::edge::EdgeSet;
use crate::graph::ConstraintGraph;
use scv_types::{Reordering, Trace};

/// Reordering information for a trace: inheritance sources and per-block ST
/// orders. Node indices are 0-based trace positions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Witness {
    /// `inh[j] = Some(i)` iff operation `j` is a LD inheriting its value
    /// from ST `i`; `None` for STs and for `⊥` loads.
    pub inh: Vec<Option<usize>>,
    /// `st_order[b]` is the serial order of the STs to block index `b`
    /// (a permutation of `trace.stores_to(B)`); empty for blocks without
    /// stores.
    pub st_order: Vec<Vec<usize>>,
}

/// Errors found when validating a witness against its trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WitnessError {
    /// `inh` has the wrong length or assigns inheritance to a non-load,
    /// a `⊥` load, or from a non-matching ST.
    BadInheritance(usize),
    /// `st_order[b]` is not a permutation of the STs to block `b`.
    BadStOrder(usize),
}

impl Witness {
    /// Derive the witness implied by a serial reordering: each LD inherits
    /// from the last ST to its block preceding it in the serial trace, and
    /// the ST order is the order of STs in the serial trace.
    pub fn from_serial_reordering(trace: &Trace, r: &Reordering) -> Witness {
        assert!(
            r.is_serial_reordering(trace),
            "witness requires a serial reordering"
        );
        let n = trace.len();
        let n_blocks = trace.iter().map(|op| op.block.idx() + 1).max().unwrap_or(0);
        let mut inh = vec![None; n];
        let mut st_order = vec![Vec::new(); n_blocks];
        let mut last_st: Vec<Option<usize>> = vec![None; n_blocks];
        for &a in r.as_slice() {
            let op = trace[a];
            let b = op.block.idx();
            if op.is_store() {
                st_order[b].push(a);
                last_st[b] = Some(a);
            } else if !op.value.is_bottom() {
                inh[a] = Some(last_st[b].expect("serial trace: load after store"));
            }
        }
        Witness { inh, st_order }
    }

    /// Extract the witness recorded in a constraint graph over `trace`:
    /// `inh` edges name each load's inheritance source, and the `STo`
    /// edge chains give each block's serial store order. Node `i` of the
    /// graph must be operation `i` of the trace (the layout produced by
    /// decoding an observer descriptor). Stores a chain leaves out are
    /// appended in trace order, so the result always has permutation
    /// shape; [`Witness::validate`] still arbitrates correctness.
    pub fn from_constraint_graph(trace: &Trace, g: &ConstraintGraph) -> Witness {
        let n = trace.len();
        let n_blocks = trace.iter().map(|op| op.block.idx() + 1).max().unwrap_or(0);
        let mut inh = vec![None; n];
        let mut succ: Vec<Option<usize>> = vec![None; n];
        let mut has_pred = vec![false; n];
        for (u, v, ann) in g.edges() {
            if ann.contains(EdgeSet::INH) && v < n {
                inh[v] = Some(u);
            }
            if ann.contains(EdgeSet::STO) && u < n && v < n {
                succ[u] = Some(v);
                has_pred[v] = true;
            }
        }
        // ⊥ loads carry no inheritance in a witness (their constraint is
        // the forced edge to the first ST, not an inh edge).
        for (j, op) in trace.iter().enumerate() {
            if !op.is_load() || op.value.is_bottom() {
                inh[j] = None;
            }
        }
        let mut st_order = vec![Vec::new(); n_blocks];
        for (b, order) in st_order.iter_mut().enumerate() {
            let stores = trace.stores_to(scv_types::BlockId::from_idx(b));
            let mut placed = vec![false; n];
            for &start in &stores {
                if has_pred[start] {
                    continue;
                }
                let mut cur = Some(start);
                while let Some(i) = cur {
                    if placed[i] {
                        break;
                    }
                    placed[i] = true;
                    order.push(i);
                    cur = succ[i];
                }
            }
            for &i in &stores {
                if !placed[i] {
                    order.push(i);
                }
            }
        }
        Witness { inh, st_order }
    }

    /// Validate shape invariants against the trace.
    pub fn validate(&self, trace: &Trace) -> Result<(), WitnessError> {
        if self.inh.len() != trace.len() {
            return Err(WitnessError::BadInheritance(usize::MAX));
        }
        for (j, src) in self.inh.iter().enumerate() {
            let op = trace[j];
            match src {
                None => {
                    if op.is_load() && !op.value.is_bottom() {
                        return Err(WitnessError::BadInheritance(j));
                    }
                }
                Some(i) => {
                    if !op.is_load() || op.value.is_bottom() {
                        return Err(WitnessError::BadInheritance(j));
                    }
                    let Some(&s) = trace.ops().get(*i) else {
                        return Err(WitnessError::BadInheritance(j));
                    };
                    if !s.is_store() || s.block != op.block || s.value != op.value {
                        return Err(WitnessError::BadInheritance(j));
                    }
                }
            }
        }
        let n_blocks = trace.iter().map(|op| op.block.idx() + 1).max().unwrap_or(0);
        if self.st_order.len() < n_blocks {
            return Err(WitnessError::BadStOrder(usize::MAX));
        }
        for (b, order) in self.st_order.iter().enumerate() {
            let mut expect = trace.stores_to(scv_types::BlockId::from_idx(b));
            let mut got = order.clone();
            expect.sort_unstable();
            got.sort_unstable();
            if expect != got {
                return Err(WitnessError::BadStOrder(b));
            }
        }
        Ok(())
    }
}

/// Build the *saturated* constraint graph for `trace` under `witness`:
/// program-order edges in trace order, the witness's ST order and
/// inheritance edges, and every forced edge added directly (constraint 5's
/// direct form, which has the same reachability as any path-proviso
/// variant).
pub fn saturated_graph(trace: &Trace, witness: &Witness) -> ConstraintGraph {
    debug_assert_eq!(witness.validate(trace), Ok(()));
    let mut g = ConstraintGraph::with_nodes(trace.iter().copied());

    // Program order edges (consecutive per processor, trace order).
    let mut last_of_proc: Vec<Option<usize>> = Vec::new();
    for (i, op) in trace.iter().enumerate() {
        let p = op.proc.idx();
        if last_of_proc.len() <= p {
            last_of_proc.resize(p + 1, None);
        }
        if let Some(prev) = last_of_proc[p] {
            g.add_edge(prev, i, EdgeSet::PO);
        }
        last_of_proc[p] = Some(i);
    }

    // ST order edges.
    for order in &witness.st_order {
        for w in order.windows(2) {
            g.add_edge(w[0], w[1], EdgeSet::STO);
        }
    }

    // Inheritance edges, indexed by source for the forced-edge pass.
    let mut heirs: Vec<Vec<usize>> = vec![Vec::new(); trace.len()];
    for (j, src) in witness.inh.iter().enumerate() {
        if let Some(i) = src {
            g.add_edge(*i, j, EdgeSet::INH);
            heirs[*i].push(j);
        }
    }

    // Forced edges, direct form: for each consecutive (i,k) in a block's ST
    // order, every heir of i gets a forced edge to k.
    for order in &witness.st_order {
        for w in order.windows(2) {
            let (i, k) = (w[0], w[1]);
            for &j in &heirs[i] {
                g.add_edge(j, k, EdgeSet::FORCED);
            }
        }
    }

    // Forced edges for ⊥ loads: to the first ST in the block's ST order.
    for (j, op) in trace.iter().enumerate() {
        if op.is_load() && op.value.is_bottom() {
            if let Some(order) = witness.st_order.get(op.block.idx()) {
                if let Some(&first) = order.first() {
                    g.add_edge(j, first, EdgeSet::FORCED);
                }
            }
        }
    }
    g
}

/// Verdict of the baseline checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BaselineVerdict {
    /// The saturated graph is acyclic: the trace has a serial reordering
    /// consistent with the witness (returned).
    Consistent(Reordering),
    /// The witness itself is malformed.
    InvalidWitness(WitnessError),
    /// The saturated graph has a cycle (returned as a node sequence):
    /// no serial reordering is consistent with the witness.
    Cyclic(Vec<usize>),
}

impl BaselineVerdict {
    /// Did the baseline find a consistent serial reordering?
    pub fn is_consistent(&self) -> bool {
        matches!(self, BaselineVerdict::Consistent(_))
    }
}

/// The whole-trace baseline checker: build the saturated graph and test
/// acyclicity.
#[derive(Default)]
pub struct BaselineChecker;

impl BaselineChecker {
    /// Check a trace against a witness.
    pub fn check(trace: &Trace, witness: &Witness) -> BaselineVerdict {
        if let Err(e) = witness.validate(trace) {
            return BaselineVerdict::InvalidWitness(e);
        }
        let g = saturated_graph(trace, witness);
        match g.topological_order() {
            Some(order) => {
                let r = Reordering::new(order);
                debug_assert!(r.is_serial_reordering(trace));
                BaselineVerdict::Consistent(r)
            }
            None => BaselineVerdict::Cyclic(g.find_cycle().expect("cyclic graph has a cycle")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::validate_constraint_graph;
    use scv_types::{BlockId, Op, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }

    fn figure3() -> (Trace, Reordering) {
        let t = Trace::from_ops([
            st(1, 1, 1),
            ld(2, 1, 1),
            st(1, 1, 2),
            ld(2, 1, 1),
            ld(2, 1, 2),
        ]);
        let r = Reordering::new(vec![0, 1, 3, 2, 4]);
        (t, r)
    }

    #[test]
    fn witness_from_reordering_is_valid() {
        let (t, r) = figure3();
        let w = Witness::from_serial_reordering(&t, &r);
        assert_eq!(w.validate(&t), Ok(()));
        assert_eq!(w.inh, vec![None, Some(0), None, Some(0), Some(2)]);
        assert_eq!(w.st_order, vec![vec![0, 2]]);
    }

    #[test]
    fn saturated_graph_satisfies_axioms_and_is_acyclic() {
        let (t, r) = figure3();
        let w = Witness::from_serial_reordering(&t, &r);
        let g = saturated_graph(&t, &w);
        assert_eq!(validate_constraint_graph(&g, &t), Ok(()));
        assert!(g.is_acyclic());
    }

    #[test]
    fn checker_accepts_consistent_witness() {
        let (t, r) = figure3();
        let w = Witness::from_serial_reordering(&t, &r);
        match BaselineChecker::check(&t, &w) {
            BaselineVerdict::Consistent(r2) => assert!(r2.is_serial_reordering(&t)),
            v => panic!("expected Consistent, got {v:?}"),
        }
    }

    #[test]
    fn checker_rejects_wrong_inheritance() {
        // LD at node 4 claims to inherit value 2 from node 0 (which stored
        // value 1): invalid witness.
        let (t, r) = figure3();
        let mut w = Witness::from_serial_reordering(&t, &r);
        w.inh[4] = Some(0);
        assert!(matches!(
            BaselineChecker::check(&t, &w),
            BaselineVerdict::InvalidWitness(WitnessError::BadInheritance(4))
        ));
    }

    #[test]
    fn checker_finds_cycle_for_stale_read_with_wrong_order() {
        // Trace: ST(B,1) by P1; ST(B,2) by P1; LD(B,1) by P2.
        // Claimed ST order = trace order, LD inherits from the first ST:
        // forced edge LD -> ST2 is fine (acyclic). But claim the *reverse*
        // ST order [1,0]: then LD inherits from ST 0, whose STo successor
        // is... none (0 is last). The cycle appears instead through po+STo:
        // po 0->1 and STo 1->0 is a 2-cycle.
        let t = Trace::from_ops([st(1, 1, 1), st(1, 1, 2), ld(2, 1, 1)]);
        let w = Witness {
            inh: vec![None, None, Some(0)],
            st_order: vec![vec![1, 0]],
        };
        assert_eq!(w.validate(&t), Ok(()));
        match BaselineChecker::check(&t, &w) {
            BaselineVerdict::Cyclic(cycle) => {
                assert!(cycle.contains(&0) && cycle.contains(&1));
            }
            v => panic!("expected Cyclic, got {v:?}"),
        }
    }

    #[test]
    fn checker_finds_forced_cycle_on_non_sc_observation() {
        // P2 reads 1 then 2; P3 reads 2 then 1. With ST order [ST1, ST2],
        // P3's second read (of value 1) forces an edge to ST2, which
        // precedes the inheritance edge ST2 -> P3's first read: cycle.
        let t = Trace::from_ops([
            st(1, 1, 1), // 0
            st(1, 1, 2), // 1   (same proc so po fixes ST order anyway)
            ld(2, 1, 1), // 2
            ld(2, 1, 2), // 3
            ld(3, 1, 2), // 4
            ld(3, 1, 1), // 5
        ]);
        let w = Witness {
            inh: vec![None, None, Some(0), Some(1), Some(1), Some(0)],
            st_order: vec![vec![0, 1]],
        };
        assert_eq!(w.validate(&t), Ok(()));
        match BaselineChecker::check(&t, &w) {
            BaselineVerdict::Cyclic(cycle) => {
                // The cycle runs through P3's po edge 4 -> 5 and the forced
                // edge 5 -> 1 and inheritance 1 -> 4.
                for wdw in cycle.windows(2) {
                    let g = saturated_graph(&t, &w);
                    assert!(g.edge(wdw[0], wdw[1]).is_some());
                }
            }
            v => panic!("expected Cyclic, got {v:?}"),
        }
    }

    #[test]
    fn bottom_load_forced_edge_creates_cycle_when_late() {
        // LD(B,⊥) after a ST to B in every possible serial order: the
        // forced edge to the first ST plus the inheritance structure of a
        // later read of that ST... simplest: P1 stores then loads ⊥.
        // po edge ST -> LD and forced edge LD -> ST: 2-cycle.
        let t = Trace::from_ops([st(1, 1, 1), Op::load(ProcId(1), BlockId(1), Value::BOTTOM)]);
        let w = Witness {
            inh: vec![None, None],
            st_order: vec![vec![0]],
        };
        assert!(matches!(
            BaselineChecker::check(&t, &w),
            BaselineVerdict::Cyclic(_)
        ));
    }

    #[test]
    fn witness_roundtrips_through_saturated_graph() {
        // Saturate a graph from a witness, re-extract the witness from the
        // graph, and check both arbitrate identically.
        let (t, r) = figure3();
        let w = Witness::from_serial_reordering(&t, &r);
        let g = saturated_graph(&t, &w);
        let w2 = Witness::from_constraint_graph(&t, &g);
        assert_eq!(w2.validate(&t), Ok(()));
        assert_eq!(w2.inh, w.inh);
        assert_eq!(w2.st_order, w.st_order);
        assert!(BaselineChecker::check(&t, &w2).is_consistent());
    }

    #[test]
    fn extraction_repairs_a_broken_chain() {
        // STo edges that miss a store: the leftover store is appended in
        // trace order, keeping permutation shape for validate().
        let t = Trace::from_ops([st(1, 1, 1), st(2, 1, 2), st(1, 1, 3)]);
        let mut g = ConstraintGraph::with_nodes(t.iter().copied());
        g.add_edge(0, 1, EdgeSet::STO);
        let w = Witness::from_constraint_graph(&t, &g);
        assert_eq!(w.st_order, vec![vec![0, 1, 2]]);
        assert_eq!(w.validate(&t), Ok(()));
    }

    #[test]
    fn st_order_permutation_mismatch_detected() {
        let t = Trace::from_ops([st(1, 1, 1), st(2, 1, 2)]);
        let w = Witness {
            inh: vec![None, None],
            st_order: vec![vec![0]],
        };
        assert!(matches!(
            BaselineChecker::check(&t, &w),
            BaselineVerdict::InvalidWitness(WitnessError::BadStOrder(0))
        ));
    }
}
