//! Constraint graphs for sequential consistency.
//!
//! Implements section 3.1 of Condon & Hu, *Automatable Verification of
//! Sequential Consistency* (SPAA 2001):
//!
//! * [`ConstraintGraph`] — a directed graph over the operations of a trace
//!   whose edges carry [`EdgeSet`] annotations (inheritance, program order,
//!   ST order, forced);
//! * [`axioms`] — the five *edge annotation constraints* of §3.1, checked
//!   globally on a whole graph (the reference implementation that the
//!   finite-state checker of `scv-checker` is differentially tested
//!   against);
//! * [`lemma31`] — both directions of Lemma 3.1: build an (acyclic)
//!   constraint graph from a serial reordering, and extract a serial
//!   reordering from an acyclic constraint graph;
//! * [`baseline`] — the Gibbons–Korach-style whole-trace checker: given a
//!   trace, an inheritance assignment, and per-block store orders, build the
//!   saturated constraint graph and test it for acyclicity (`O(n)` memory,
//!   the baseline the streaming checker is benchmarked against);
//! * [`serial_search`] — a direct decision procedure for "does this trace
//!   have a serial reordering?" by memoized search over interleavings
//!   (exponential in the worst case; used to cross-validate Lemma 3.1 on
//!   small traces);
//! * [`random`] — random workload generation: traces with known serial
//!   reorderings, witnessed inheritance/store-order assignments, and
//!   mutation-based non-SC traces.

pub mod axioms;
pub mod baseline;
pub mod dot;
pub mod edge;
pub mod explain;
pub mod graph;
pub mod lemma31;
pub mod random;
pub mod serial_search;

pub use axioms::{validate_constraint_graph, AxiomViolation};
pub use baseline::{saturated_graph, BaselineChecker, BaselineVerdict, Witness, WitnessError};
pub use dot::{to_dot, to_dot_with_cycle};
pub use edge::EdgeSet;
pub use explain::{annotated_dot, find_cycle_in};
pub use graph::ConstraintGraph;
pub use lemma31::{graph_from_serial_reordering, serial_reordering_from_graph};
pub use serial_search::has_serial_reordering;
