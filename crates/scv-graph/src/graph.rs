//! The constraint graph data structure (§3.1) and node bandwidth (§3.2).

use crate::edge::EdgeSet;
use scv_types::Op;
use std::collections::VecDeque;
use std::fmt;

/// A directed graph whose nodes are the operations of a trace, numbered by
/// their trace order, and whose edges carry [`EdgeSet`] annotations.
///
/// Node numbering is 0-based in the API; [`fmt::Display`] prints 1-based
/// numbers to match the paper. Equality is *semantic*: two graphs are
/// equal iff they have the same labeled nodes and the same annotated edge
/// set, regardless of edge insertion order.
#[derive(Clone, Default)]
pub struct ConstraintGraph {
    labels: Vec<Op>,
    /// Out-adjacency: `adj[u]` lists `(v, annotations)` with `u -> v`.
    adj: Vec<Vec<(u32, EdgeSet)>>,
    /// In-adjacency (targets only), maintained for bandwidth and in-degree
    /// computations.
    radj: Vec<Vec<u32>>,
    n_edges: usize,
}

impl ConstraintGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A graph with the given node labels and no edges.
    pub fn with_nodes(labels: impl IntoIterator<Item = Op>) -> Self {
        let labels: Vec<Op> = labels.into_iter().collect();
        let n = labels.len();
        ConstraintGraph {
            labels,
            adj: vec![Vec::new(); n],
            radj: vec![Vec::new(); n],
            n_edges: 0,
        }
    }

    /// Append a node labeled `op`; returns its (0-based) number.
    pub fn add_node(&mut self, op: Op) -> usize {
        self.labels.push(op);
        self.adj.push(Vec::new());
        self.radj.push(Vec::new());
        self.labels.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct directed edges (parallel annotations merge).
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// The label of node `u`.
    pub fn label(&self, u: usize) -> Op {
        self.labels[u]
    }

    /// All node labels in trace order.
    pub fn labels(&self) -> &[Op] {
        &self.labels
    }

    /// Add edge `u -> v` with the given annotations, merging with any
    /// existing annotations on that edge. Panics on an empty annotation set
    /// (constraint 1 requires at least one annotation per edge).
    pub fn add_edge(&mut self, u: usize, v: usize, ann: EdgeSet) {
        assert!(!ann.is_empty(), "constraint-graph edges must be annotated");
        assert!(
            u < self.node_count() && v < self.node_count(),
            "edge endpoint out of range"
        );
        if let Some(entry) = self.adj[u].iter_mut().find(|(t, _)| *t as usize == v) {
            entry.1 |= ann;
            return;
        }
        self.adj[u].push((v as u32, ann));
        self.radj[v].push(u as u32);
        self.n_edges += 1;
    }

    /// The annotations on edge `u -> v`, if present.
    pub fn edge(&self, u: usize, v: usize) -> Option<EdgeSet> {
        self.adj[u]
            .iter()
            .find(|(t, _)| *t as usize == v)
            .map(|(_, a)| *a)
    }

    /// Out-edges of `u` as `(target, annotations)` pairs.
    pub fn out_edges(&self, u: usize) -> &[(u32, EdgeSet)] {
        &self.adj[u]
    }

    /// Sources of in-edges of `v`.
    pub fn in_sources(&self, v: usize) -> &[u32] {
        &self.radj[v]
    }

    /// Iterate over all edges as `(u, v, annotations)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, EdgeSet)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, outs)| outs.iter().map(move |&(v, a)| (u, v as usize, a)))
    }

    /// Edges filtered to those carrying a particular annotation.
    pub fn edges_with(&self, ann: EdgeSet) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges()
            .filter(move |&(_, _, a)| a.contains(ann))
            .map(|(u, v, _)| (u, v))
    }

    /// A topological order of the nodes, or `None` if the graph is cyclic
    /// (Kahn's algorithm).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.node_count();
        let mut indeg: Vec<u32> = (0..n).map(|v| self.radj[v].len() as u32).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &(v, _) in &self.adj[u] {
                let v = v as usize;
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Is the graph acyclic?
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Find a directed cycle, as a node sequence `v0 -> v1 -> ... -> v0`
    /// (first node repeated at the end), or `None` if acyclic. Used for
    /// counterexample reporting.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.node_count();
        let mut color = vec![WHITE; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            // Iterative DFS with explicit edge cursors.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = GRAY;
            while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
                if *cursor < self.adj[u].len() {
                    let v = self.adj[u][*cursor].0 as usize;
                    *cursor += 1;
                    match color[v] {
                        WHITE => {
                            color[v] = GRAY;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        GRAY => {
                            // Found a back edge u -> v: the cycle is v, the
                            // tree path v -> ... -> u, then back to v.
                            let mut path = Vec::new();
                            let mut cur = u;
                            while cur != v {
                                path.push(cur);
                                cur = parent[cur];
                            }
                            path.reverse();
                            let mut cycle = Vec::with_capacity(path.len() + 2);
                            cycle.push(v);
                            cycle.extend(path);
                            cycle.push(v);
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color[u] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }

    /// The *node bandwidth* of the graph under its natural node order
    /// (§3.2): the maximum over all `i` of the number of nodes in
    /// `{0..=i}` that have an edge to or from a node in `{i+1..}`.
    ///
    /// A graph is `k`-node-bandwidth bounded iff `self.bandwidth() <= k`.
    pub fn bandwidth(&self) -> usize {
        let n = self.node_count();
        if n == 0 {
            return 0;
        }
        // last_touch[u] = largest node index adjacent to u (in or out),
        // or u itself if isolated.
        let mut last_touch: Vec<usize> = (0..n).collect();
        for (u, v, _) in self.edges() {
            let m = u.max(v);
            last_touch[u] = last_touch[u].max(m);
            last_touch[v] = last_touch[v].max(m);
        }
        // Node u crosses cut i (between i and i+1) iff u <= i < last_touch[u].
        // Sweep cuts, adding u at cut u and removing it at cut last_touch[u].
        let mut delta = vec![0isize; n + 1];
        for u in 0..n {
            if last_touch[u] > u {
                delta[u] += 1;
                delta[last_touch[u]] -= 1;
            }
        }
        let mut cur = 0isize;
        let mut best = 0isize;
        for d in &delta[..n] {
            cur += d;
            best = best.max(cur);
        }
        best as usize
    }
}

impl PartialEq for ConstraintGraph {
    fn eq(&self, other: &Self) -> bool {
        if self.labels != other.labels || self.n_edges != other.n_edges {
            return false;
        }
        let mut a: Vec<(usize, usize, EdgeSet)> = self.edges().collect();
        let mut b: Vec<(usize, usize, EdgeSet)> = other.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

impl Eq for ConstraintGraph {}

impl fmt::Display for ConstraintGraph {
    /// Lists nodes and edges in the naive descriptor style of §3.2, with
    /// 1-based node numbers as in the paper.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for v in 0..self.node_count() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}, {}", v + 1, self.labels[v])?;
            // Paper convention: when node v is introduced, list all edges
            // between v and earlier nodes (both directions).
            let mut incident: Vec<(usize, usize, EdgeSet)> = Vec::new();
            for &u in &self.radj[v] {
                let u = u as usize;
                if u < v {
                    incident.push((u, v, self.edge(u, v).expect("radj consistent")));
                }
            }
            for &(t, a) in &self.adj[v] {
                let t = t as usize;
                if t < v {
                    incident.push((v, t, a));
                }
            }
            incident.sort();
            for (u, w, a) in incident {
                write!(f, ", ({},{}), {}", u + 1, w + 1, a)?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for ConstraintGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConstraintGraph[{self}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_types::{BlockId, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }

    /// The graph of paper Figure 3.
    fn figure3() -> ConstraintGraph {
        let mut g = ConstraintGraph::with_nodes([
            st(1, 1, 1), // 1: ST(P1,B,1)
            ld(2, 1, 1), // 2: LD(P2,B,1)
            st(1, 1, 2), // 3: ST(P1,B,2)
            ld(2, 1, 1), // 4: LD(P2,B,1)
            ld(2, 1, 2), // 5: LD(P2,B,2)
        ]);
        g.add_edge(0, 1, EdgeSet::INH);
        g.add_edge(0, 2, EdgeSet::PO_STO);
        g.add_edge(0, 3, EdgeSet::INH);
        g.add_edge(1, 3, EdgeSet::PO);
        g.add_edge(3, 2, EdgeSet::FORCED);
        g.add_edge(2, 4, EdgeSet::INH);
        g.add_edge(3, 4, EdgeSet::PO);
        g
    }

    #[test]
    fn figure3_is_acyclic_and_3_bandwidth_bounded() {
        let g = figure3();
        assert!(g.is_acyclic());
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 7);
        // The paper notes Figure 3 is 3-node-bandwidth bounded.
        assert_eq!(g.bandwidth(), 3);
    }

    #[test]
    fn figure3_display_matches_naive_descriptor() {
        let g = figure3();
        assert_eq!(
            g.to_string(),
            "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh, 3, ST(P1,B1,2), (1,3), po-STo, \
             4, LD(P2,B1,1), (1,4), inh, (2,4), po, (4,3), forced, \
             5, LD(P2,B1,2), (3,5), inh, (4,5), po"
        );
    }

    #[test]
    fn merge_parallel_edges() {
        let mut g = ConstraintGraph::with_nodes([st(1, 1, 1), st(1, 1, 2)]);
        g.add_edge(0, 1, EdgeSet::PO);
        g.add_edge(0, 1, EdgeSet::STO);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(0, 1), Some(EdgeSet::PO_STO));
    }

    #[test]
    fn cycle_detected_and_reported() {
        let mut g = ConstraintGraph::with_nodes([st(1, 1, 1), ld(2, 1, 1), st(2, 1, 2)]);
        g.add_edge(0, 1, EdgeSet::INH);
        g.add_edge(1, 2, EdgeSet::FORCED);
        g.add_edge(2, 0, EdgeSet::STO);
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert!(cycle.len() >= 3);
        assert_eq!(cycle.first(), cycle.last());
        // Every consecutive pair is an edge.
        for w in cycle.windows(2) {
            assert!(g.edge(w[0], w[1]).is_some(), "cycle step {w:?} not an edge");
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = ConstraintGraph::with_nodes([st(1, 1, 1)]);
        g.add_edge(0, 0, EdgeSet::FORCED);
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle, vec![0, 0]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = figure3();
        let order = g.topological_order().unwrap();
        let mut pos = vec![0usize; g.node_count()];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        for (u, v, _) in g.edges() {
            assert!(pos[u] < pos[v], "edge ({u},{v}) violated");
        }
    }

    #[test]
    fn bandwidth_of_path_and_clique() {
        // A path 0->1->2->...->9 has bandwidth 1.
        let mut g = ConstraintGraph::with_nodes((0..10).map(|_| st(1, 1, 1)));
        for i in 0..9 {
            g.add_edge(i, i + 1, EdgeSet::PO);
        }
        assert_eq!(g.bandwidth(), 1);
        // A star from node 0 to all others keeps node 0 live through every
        // cut: bandwidth is still 1 (only node 0 crosses each cut... plus
        // nothing else), but an edge from node 1 to node 9 makes it 2.
        g.add_edge(1, 9, EdgeSet::FORCED);
        assert_eq!(g.bandwidth(), 2);
    }

    #[test]
    fn bandwidth_of_empty_and_isolated() {
        assert_eq!(ConstraintGraph::new().bandwidth(), 0);
        let g = ConstraintGraph::with_nodes([st(1, 1, 1), st(1, 1, 2)]);
        assert_eq!(g.bandwidth(), 0);
    }
}
