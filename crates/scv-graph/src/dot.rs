//! Graphviz DOT export for constraint graphs — used when inspecting
//! counterexample witness graphs by eye.

use crate::edge::EdgeSet;
use crate::graph::ConstraintGraph;
use std::fmt::Write;

/// Render the graph in Graphviz DOT syntax. Nodes are numbered 1-based as
/// in the paper and labeled with their operations; edge styles distinguish
/// the four annotations (program order solid, ST order bold, inheritance
/// dashed, forced dotted — combinations list all labels).
pub fn to_dot(g: &ConstraintGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph constraint_graph {\n");
    out.push_str("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n");
    for v in 0..g.node_count() {
        let op = g.label(v);
        let shape = if op.is_store() { "box" } else { "ellipse" };
        writeln!(
            out,
            "  n{} [label=\"{}: {}\", shape={}];",
            v + 1,
            v + 1,
            op,
            shape
        )
        .expect("write to string");
    }
    for (u, v, ann) in g.edges() {
        let style = if ann.contains(EdgeSet::STO) {
            "bold"
        } else if ann.contains(EdgeSet::PO) {
            "solid"
        } else if ann.contains(EdgeSet::INH) {
            "dashed"
        } else {
            "dotted"
        };
        writeln!(
            out,
            "  n{} -> n{} [label=\"{}\", style={}];",
            u + 1,
            v + 1,
            ann,
            style
        )
        .expect("write to string");
    }
    out.push_str("}\n");
    out
}

/// Highlight a cycle (as returned by [`ConstraintGraph::find_cycle`]) in
/// red on top of the plain rendering.
pub fn to_dot_with_cycle(g: &ConstraintGraph, cycle: &[usize]) -> String {
    let mut out = to_dot(g);
    let closing = out.rfind('}').expect("well-formed dot");
    out.truncate(closing);
    for w in cycle.windows(2) {
        writeln!(
            out,
            "  n{} -> n{} [color=red, penwidth=2, label=\"cycle\"];",
            w[0] + 1,
            w[1] + 1
        )
        .expect("write to string");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_types::{BlockId, Op, ProcId, Value};

    fn sample() -> ConstraintGraph {
        let mut g = ConstraintGraph::with_nodes([
            Op::store(ProcId(1), BlockId(1), Value(1)),
            Op::load(ProcId(2), BlockId(1), Value(1)),
        ]);
        g.add_edge(0, 1, EdgeSet::INH);
        g
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph constraint_graph {"));
        assert!(dot.contains("n1 [label=\"1: ST(P1,B1,1)\", shape=box]"));
        assert!(dot.contains("n2 [label=\"2: LD(P2,B1,1)\", shape=ellipse]"));
        assert!(dot.contains("n1 -> n2 [label=\"inh\", style=dashed]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn edge_styles_reflect_annotations() {
        let mut g = sample();
        g.add_edge(1, 0, EdgeSet::FORCED); // creates a cycle, but dot doesn't care
        let dot = to_dot(&g);
        assert!(dot.contains("style=dotted"));
    }

    #[test]
    fn cycle_overlay_appends_red_edges() {
        let mut g = sample();
        g.add_edge(1, 0, EdgeSet::FORCED);
        let cycle = g.find_cycle().expect("cyclic");
        let dot = to_dot_with_cycle(&g, &cycle);
        assert!(dot.contains("color=red"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
