//! Counterexample explanation support: cycle finding and annotated DOT
//! rendering over *raw* edge lists, as produced by decoding a descriptor
//! prefix.
//!
//! Unlike [`crate::dot::to_dot`], which requires a fully-labeled
//! [`crate::ConstraintGraph`], these functions tolerate the partial
//! graphs that arise when explaining a rejection: a descriptor prefix cut
//! at the offending symbol can mention nodes whose labels were recycled
//! away and edges that carry no annotation. Edge styles follow §3.1 of
//! the paper (program order solid, ST order bold, inheritance dashed,
//! forced dotted); the rejecting cycle is overlaid in red.

use crate::edge::EdgeSet;
use scv_types::Op;
use std::fmt::Write;

/// Find a directed cycle in a graph given as an edge list over nodes
/// `0..n`, in the same format as [`crate::ConstraintGraph::find_cycle`]:
/// the first node is repeated at the end (`[v, ..., v]`), or `None` if
/// the graph is acyclic. Parallel edges and self-loops are handled.
pub fn find_cycle_in(n: usize, edges: &[(usize, usize, EdgeSet)]) -> Option<Vec<usize>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v, _) in edges {
        adj[u].push(v as u32);
    }
    let mut color = vec![WHITE; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != WHITE {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = GRAY;
        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            if *cursor < adj[u].len() {
                let v = adj[u][*cursor] as usize;
                *cursor += 1;
                match color[v] {
                    WHITE => {
                        color[v] = GRAY;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    GRAY => {
                        // Back edge u -> v closes the cycle v ->* u -> v.
                        let mut path = Vec::new();
                        let mut cur = u;
                        while cur != v {
                            path.push(cur);
                            cur = parent[cur];
                        }
                        path.reverse();
                        let mut cycle = Vec::with_capacity(path.len() + 2);
                        cycle.push(v);
                        cycle.extend(path);
                        cycle.push(v);
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[u] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

fn edge_style(ann: EdgeSet) -> &'static str {
    if ann.contains(EdgeSet::STO) {
        "bold"
    } else if ann.contains(EdgeSet::PO) {
        "solid"
    } else if ann.contains(EdgeSet::INH) {
        "dashed"
    } else {
        "dotted"
    }
}

/// Render a partially-labeled constraint graph in Graphviz DOT syntax,
/// highlighting `cycle` (a [`find_cycle_in`]-format node sequence) in
/// red. Nodes are numbered 1-based as in the paper; unlabeled nodes
/// render as `?` (their label symbol lies outside the decoded window).
pub fn annotated_dot(
    labels: &[Option<Op>],
    edges: &[(usize, usize, EdgeSet)],
    cycle: Option<&[usize]>,
) -> String {
    let on_cycle = |u: usize, v: usize| -> bool {
        cycle.is_some_and(|c| c.windows(2).any(|w| w[0] == u && w[1] == v))
    };
    let cycle_nodes: Vec<usize> = cycle.map(|c| c.to_vec()).unwrap_or_default();
    let mut out = String::new();
    out.push_str("digraph constraint_graph {\n");
    out.push_str("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n");
    for (v, op) in labels.iter().enumerate() {
        let (text, shape) = match op {
            Some(op) => (
                format!("{}: {}", v + 1, op),
                if op.is_store() { "box" } else { "ellipse" },
            ),
            None => (format!("{}: ?", v + 1), "box"),
        };
        let highlight = if cycle_nodes.contains(&v) {
            ", color=red, penwidth=2"
        } else {
            ""
        };
        writeln!(
            out,
            "  n{} [label=\"{text}\", shape={shape}{highlight}];",
            v + 1
        )
        .expect("write to string");
    }
    for &(u, v, ann) in edges {
        let label = if ann.is_empty() {
            String::new()
        } else {
            ann.to_string()
        };
        let highlight = if on_cycle(u, v) {
            ", color=red, penwidth=2"
        } else {
            ""
        };
        writeln!(
            out,
            "  n{} -> n{} [label=\"{label}\", style={}{highlight}];",
            u + 1,
            v + 1,
            edge_style(ann),
        )
        .expect("write to string");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_types::{BlockId, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }

    #[test]
    fn acyclic_edge_list_has_no_cycle() {
        let edges = vec![(0, 1, EdgeSet::PO), (1, 2, EdgeSet::PO)];
        assert_eq!(find_cycle_in(3, &edges), None);
    }

    #[test]
    fn cycle_found_with_first_node_repeated() {
        let edges = vec![
            (0, 1, EdgeSet::PO),
            (1, 2, EdgeSet::INH),
            (2, 0, EdgeSet::FORCED),
        ];
        let cycle = find_cycle_in(3, &edges).expect("cyclic");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
        for w in cycle.windows(2) {
            assert!(
                edges.iter().any(|&(u, v, _)| (u, v) == (w[0], w[1])),
                "cycle step {w:?} is not an edge"
            );
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let edges = vec![(1, 1, EdgeSet::EMPTY)];
        assert_eq!(find_cycle_in(2, &edges), Some(vec![1, 1]));
    }

    #[test]
    fn dot_tolerates_unlabeled_nodes_and_empty_annotations() {
        let labels = vec![Some(st(1, 1, 1)), None];
        let edges = vec![(0, 1, EdgeSet::EMPTY)];
        let dot = annotated_dot(&labels, &edges, None);
        assert!(dot.contains("n1 [label=\"1: ST(P1,B1,1)\", shape=box]"));
        assert!(dot.contains("n2 [label=\"2: ?\", shape=box]"));
        assert!(dot.contains("n1 -> n2 [label=\"\", style=dotted]"));
        assert!(!dot.contains("color=red"));
    }

    #[test]
    fn cycle_edges_and_nodes_render_red() {
        let labels = vec![Some(st(1, 1, 1)), Some(ld(2, 1, 1)), Some(st(1, 1, 2))];
        let edges = vec![
            (0, 1, EdgeSet::PO),
            (1, 2, EdgeSet::INH),
            (2, 1, EdgeSet::FORCED),
        ];
        let cycle = find_cycle_in(3, &edges).expect("cyclic");
        let dot = annotated_dot(&labels, &edges, Some(&cycle));
        // The 1->2 edge is off-cycle; both cycle edges are red.
        assert!(dot.contains("n1 -> n2 [label=\"po\", style=solid];"));
        assert!(dot.contains("n2 -> n3 [label=\"inh\", style=dashed, color=red, penwidth=2];"));
        assert!(dot.contains("n3 -> n2 [label=\"forced\", style=dotted, color=red, penwidth=2];"));
        assert!(
            dot.contains("n2 [label=\"2: LD(P2,B1,1)\", shape=ellipse, color=red, penwidth=2];")
        );
    }
}
