//! Both directions of Lemma 3.1: a trace has a serial reordering iff some
//! constraint graph for it is acyclic.

use crate::edge::EdgeSet;
use crate::graph::ConstraintGraph;
use scv_types::{Reordering, Trace};

/// Forward direction of Lemma 3.1 (the construction in its proof): given a
/// serial reordering `Π` of `trace`, build the constraint graph whose
/// program-order, ST-order, inheritance, and forced edges all follow the
/// serial trace `T' = Π(T)`. The resulting graph is a constraint graph for
/// `trace` and is acyclic.
///
/// Panics if `reordering` is not a serial reordering of `trace` (the
/// construction is only defined for serial reorderings).
pub fn graph_from_serial_reordering(trace: &Trace, reordering: &Reordering) -> ConstraintGraph {
    assert!(
        reordering.is_serial_reordering(trace),
        "graph_from_serial_reordering requires a serial reordering"
    );
    let mut g = ConstraintGraph::with_nodes(trace.iter().copied());
    // Positions of original nodes within T' (π⁻¹).
    let inv = reordering.inverse();
    // Scan T' once, maintaining per-processor last op, per-block last ST,
    // and per-block current inheritance source.
    let order = reordering.as_slice();

    // Bullet 1: program order edges (consecutive ops of each processor in
    // T'; same as consecutive in T since program order is preserved).
    let mut last_of_proc: Vec<Option<usize>> = Vec::new();
    // Bullet 2: ST order edges (consecutive STs per block in T').
    let mut last_st_of_block: Vec<Option<usize>> = Vec::new();
    // Bullet 3: inheritance edges (last ST to the block before each LD in T').
    for &a in order {
        let op = trace[a];
        let p = op.proc.idx();
        if last_of_proc.len() <= p {
            last_of_proc.resize(p + 1, None);
        }
        if let Some(prev) = last_of_proc[p] {
            g.add_edge(prev, a, EdgeSet::PO);
        }
        last_of_proc[p] = Some(a);

        let b = op.block.idx();
        if last_st_of_block.len() <= b {
            last_st_of_block.resize(b + 1, None);
        }
        if op.is_store() {
            if let Some(prev) = last_st_of_block[b] {
                g.add_edge(prev, a, EdgeSet::STO);
            }
            last_st_of_block[b] = Some(a);
        } else if !op.value.is_bottom() {
            let src = last_st_of_block[b].expect("serial trace: non-⊥ load must follow a store");
            debug_assert_eq!(trace[src].value, op.value);
            g.add_edge(src, a, EdgeSet::INH);
        }
    }

    // Bullet 4: forced edges for triples (i, a, b) with STo edge i->b and
    // inh edge i->a.
    let sto: Vec<(usize, usize)> = g.edges_with(EdgeSet::STO).collect();
    let inh: Vec<(usize, usize)> = g.edges_with(EdgeSet::INH).collect();
    for &(i, b) in &sto {
        for &(src, a) in &inh {
            if src == i {
                g.add_edge(a, b, EdgeSet::FORCED);
            }
        }
    }

    // Bullet 5: forced edges from each LD(P,B,⊥) to the first ST to B in T'.
    let mut first_st_of_block: Vec<Option<usize>> = Vec::new();
    for &a in order {
        let op = trace[a];
        let b = op.block.idx();
        if first_st_of_block.len() <= b {
            first_st_of_block.resize(b + 1, None);
        }
        if op.is_store() && first_st_of_block[b].is_none() {
            first_st_of_block[b] = Some(a);
        }
    }
    for (a, op) in trace.iter().enumerate() {
        if op.is_load() && op.value.is_bottom() {
            let b = op.block.idx();
            if let Some(Some(first)) = first_st_of_block.get(b) {
                // In a serial T', every ⊥ load precedes the first ST.
                debug_assert!(inv[a] < inv[*first]);
                g.add_edge(a, *first, EdgeSet::FORCED);
            }
        }
    }
    g
}

/// Reverse direction of Lemma 3.1: any total order of the nodes of an
/// acyclic constraint graph that respects its edges is a serial reordering.
/// Returns `None` if the graph is cyclic.
pub fn serial_reordering_from_graph(g: &ConstraintGraph) -> Option<Reordering> {
    g.topological_order().map(Reordering::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::validate_constraint_graph;
    use scv_types::{BlockId, Op, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }

    /// The Figure 3 trace with the serial reordering 1,2,4,3,5.
    fn figure3() -> (Trace, Reordering) {
        let t = Trace::from_ops([
            st(1, 1, 1),
            ld(2, 1, 1),
            st(1, 1, 2),
            ld(2, 1, 1),
            ld(2, 1, 2),
        ]);
        let r = Reordering::new(vec![0, 1, 3, 2, 4]);
        assert!(r.is_serial_reordering(&t));
        (t, r)
    }

    #[test]
    fn forward_builds_valid_acyclic_constraint_graph() {
        let (t, r) = figure3();
        let g = graph_from_serial_reordering(&t, &r);
        assert!(g.is_acyclic());
        assert_eq!(validate_constraint_graph(&g, &t), Ok(()));
    }

    #[test]
    fn forward_matches_figure3_edges() {
        let (t, r) = figure3();
        let g = graph_from_serial_reordering(&t, &r);
        // The paper's Figure 3 edges (0-based), with the direct forced edges
        // of the proof construction.
        assert!(g.edge(0, 1).unwrap().contains(EdgeSet::INH));
        assert!(g.edge(0, 2).unwrap().contains(EdgeSet::PO));
        assert!(g.edge(0, 2).unwrap().contains(EdgeSet::STO));
        assert!(g.edge(0, 3).unwrap().contains(EdgeSet::INH));
        assert!(g.edge(1, 3).unwrap().contains(EdgeSet::PO));
        assert!(g.edge(2, 4).unwrap().contains(EdgeSet::INH));
        assert!(g.edge(3, 4).unwrap().contains(EdgeSet::PO));
        assert!(g.edge(3, 2).unwrap().contains(EdgeSet::FORCED));
        // The proof construction also forces 2 -> 3 directly (node 2
        // inherits from node 1, node 3 is the STo successor of node 1).
        assert!(g.edge(1, 2).unwrap().contains(EdgeSet::FORCED));
    }

    #[test]
    fn reverse_extracts_serial_reordering() {
        let (t, r) = figure3();
        let g = graph_from_serial_reordering(&t, &r);
        let r2 = serial_reordering_from_graph(&g).unwrap();
        assert!(r2.is_serial_reordering(&t));
    }

    #[test]
    fn roundtrip_on_interleaved_workload() {
        // Two processors ping-pong on two blocks; trace equals its own
        // witness (already serial).
        let t = Trace::from_ops([
            st(1, 1, 1),
            ld(2, 1, 1),
            st(2, 2, 2),
            ld(1, 2, 2),
            st(1, 1, 2),
            ld(2, 1, 2),
        ]);
        assert!(t.is_serial());
        let r = Reordering::identity(t.len());
        let g = graph_from_serial_reordering(&t, &r);
        assert!(g.is_acyclic());
        assert_eq!(validate_constraint_graph(&g, &t), Ok(()));
        let r2 = serial_reordering_from_graph(&g).unwrap();
        assert!(r2.is_serial_reordering(&t));
    }

    #[test]
    fn bottom_loads_get_forced_edges() {
        let t = Trace::from_ops([
            Op::load(ProcId(2), BlockId(1), Value::BOTTOM),
            st(1, 1, 1),
            ld(2, 1, 1),
        ]);
        let r = Reordering::identity(3);
        assert!(r.is_serial_reordering(&t));
        let g = graph_from_serial_reordering(&t, &r);
        assert!(g.edge(0, 1).unwrap().contains(EdgeSet::FORCED));
        assert_eq!(validate_constraint_graph(&g, &t), Ok(()));
    }

    #[test]
    #[should_panic(expected = "requires a serial reordering")]
    fn non_serial_reordering_rejected() {
        let t = Trace::from_ops([st(1, 1, 1), ld(2, 1, 2)]);
        let r = Reordering::identity(2);
        let _ = graph_from_serial_reordering(&t, &r);
    }

    #[test]
    fn reverse_on_cyclic_graph_is_none() {
        let mut g = ConstraintGraph::with_nodes([st(1, 1, 1), st(2, 1, 2)]);
        g.add_edge(0, 1, EdgeSet::STO);
        g.add_edge(1, 0, EdgeSet::FORCED);
        assert!(serial_reordering_from_graph(&g).is_none());
    }
}
