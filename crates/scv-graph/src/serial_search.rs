//! Direct decision procedure for "does this trace have a serial
//! reordering?" (§2.2), by memoized search over interleavings.
//!
//! A serial reordering consumes each processor's operations in program
//! order, so a search state is the per-processor cursor vector plus the
//! current memory contents (the value of the last store executed per
//! block). The number of states is at most `∏(len_p + 1) · v^b`, which is
//! exponential in general — consistent with the NP-completeness of testing
//! shared memories (Gibbons & Korach) — but fine for the small traces this
//! is used on: cross-validating Lemma 3.1 and the observer/checker pipeline.

use scv_types::{Reordering, Trace, Value};
use std::collections::{HashMap, HashSet};

/// Find a serial reordering of `trace`, or `None` if none exists.
///
/// The returned reordering `r` satisfies `r.is_serial_reordering(trace)`.
pub fn find_serial_reordering(trace: &Trace) -> Option<Reordering> {
    let n = trace.len();
    if n == 0 {
        return Some(Reordering::identity(0));
    }
    // Per-processor operation index lists.
    let mut procs: Vec<Vec<usize>> = Vec::new();
    for (i, op) in trace.iter().enumerate() {
        let p = op.proc.idx();
        if procs.len() <= p {
            procs.resize(p + 1, Vec::new());
        }
        procs[p].push(i);
    }
    let n_blocks = trace.iter().map(|op| op.block.idx() + 1).max().unwrap_or(0);

    // Memoized DFS over (cursors, memory) states known to be dead ends.
    let mut dead: HashSet<(Vec<u16>, Vec<Value>)> = HashSet::new();
    let mut cursors = vec![0u16; procs.len()];
    let mut mem = vec![Value::BOTTOM; n_blocks];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    fn dfs(
        procs: &[Vec<usize>],
        trace: &Trace,
        cursors: &mut Vec<u16>,
        mem: &mut Vec<Value>,
        order: &mut Vec<usize>,
        dead: &mut HashSet<(Vec<u16>, Vec<Value>)>,
    ) -> bool {
        if order.len() == trace.len() {
            return true;
        }
        let key = (cursors.clone(), mem.clone());
        if dead.contains(&key) {
            return false;
        }
        for p in 0..procs.len() {
            let c = cursors[p] as usize;
            if c >= procs[p].len() {
                continue;
            }
            let i = procs[p][c];
            let op = trace[i];
            let b = op.block.idx();
            let old = mem[b];
            if op.is_store() {
                mem[b] = op.value;
            } else if mem[b] != op.value {
                continue; // load value would be wrong here
            }
            cursors[p] += 1;
            order.push(i);
            if dfs(procs, trace, cursors, mem, order, dead) {
                return true;
            }
            order.pop();
            cursors[p] -= 1;
            mem[b] = old;
        }
        dead.insert(key);
        false
    }

    if dfs(&procs, trace, &mut cursors, &mut mem, &mut order, &mut dead) {
        let r = Reordering::new(order);
        debug_assert!(r.is_serial_reordering(trace));
        Some(r)
    } else {
        None
    }
}

/// Does the trace have a serial reordering? (§2.2: a protocol is
/// sequentially consistent iff all of its traces do.)
pub fn has_serial_reordering(trace: &Trace) -> bool {
    find_serial_reordering(trace).is_some()
}

/// Count the distinct serial reorderings of a trace (for tests and for the
/// Figure 1 outcome enumeration). Exponential; small traces only.
pub fn count_serial_reorderings(trace: &Trace) -> usize {
    let n = trace.len();
    let mut procs: Vec<Vec<usize>> = Vec::new();
    for (i, op) in trace.iter().enumerate() {
        let p = op.proc.idx();
        if procs.len() <= p {
            procs.resize(p + 1, Vec::new());
        }
        procs[p].push(i);
    }
    let n_blocks = trace.iter().map(|op| op.block.idx() + 1).max().unwrap_or(0);
    // Count paths by memoizing on (cursors, memory).
    let mut memo: HashMap<(Vec<u16>, Vec<Value>), usize> = HashMap::new();

    fn count(
        procs: &[Vec<usize>],
        trace: &Trace,
        cursors: &mut Vec<u16>,
        mem: &mut Vec<Value>,
        remaining: usize,
        memo: &mut HashMap<(Vec<u16>, Vec<Value>), usize>,
    ) -> usize {
        if remaining == 0 {
            return 1;
        }
        let key = (cursors.clone(), mem.clone());
        if let Some(&c) = memo.get(&key) {
            return c;
        }
        let mut total = 0usize;
        for p in 0..procs.len() {
            let c = cursors[p] as usize;
            if c >= procs[p].len() {
                continue;
            }
            let i = procs[p][c];
            let op = trace[i];
            let b = op.block.idx();
            let old = mem[b];
            if op.is_store() {
                mem[b] = op.value;
            } else if mem[b] != op.value {
                continue;
            }
            cursors[p] += 1;
            total += count(procs, trace, cursors, mem, remaining - 1, memo);
            cursors[p] -= 1;
            mem[b] = old;
        }
        memo.insert(key, total);
        total
    }

    let mut cursors = vec![0u16; procs.len()];
    let mut mem = vec![Value::BOTTOM; n_blocks];
    count(&procs, trace, &mut cursors, &mut mem, n, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_types::{BlockId, Op, ProcId};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }
    fn ldb(p: u8, b: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value::BOTTOM)
    }

    #[test]
    fn empty_and_serial_traces_pass() {
        assert!(has_serial_reordering(&Trace::new()));
        let t = Trace::from_ops([st(1, 1, 1), ld(2, 1, 1)]);
        assert!(has_serial_reordering(&t));
    }

    #[test]
    fn figure1_outcomes() {
        // Figure 1 (message-passing litmus): Processor 1 executes
        // ST r1,x then ST r2,y; Processor 2 executes LD r2,y then LD r1,x.
        // With x = B1 (value 1) and y = B2 (value 2), the paper's caption:
        // serial memory gives only (r1,r2) = (1,2); SC also allows (0,0)
        // and (1,0) but *not* (0,2); relaxed models allow (0,2) by
        // reordering the two loads.
        let outcome = |r1: Option<u8>, r2: Option<u8>| {
            Trace::from_ops([
                st(1, 1, 1), // P1: ST r1 -> x   (x = 1)
                st(1, 2, 2), // P1: ST r2 -> y   (y = 2)
                match r2 {
                    Some(v) => ld(2, 2, v),
                    None => ldb(2, 2),
                }, // P2: LD r2 <- y
                match r1 {
                    Some(v) => ld(2, 1, v),
                    None => ldb(2, 1),
                }, // P2: LD r1 <- x
            ])
        };
        assert!(has_serial_reordering(&outcome(Some(1), Some(2))));
        assert!(has_serial_reordering(&outcome(None, None)));
        assert!(has_serial_reordering(&outcome(Some(1), None)));
        assert!(!has_serial_reordering(&outcome(None, Some(2))));
    }

    #[test]
    fn witness_is_checked() {
        let t = Trace::from_ops([
            st(1, 1, 1),
            ld(2, 1, 1),
            st(1, 1, 2),
            ld(2, 1, 1), // stale read: must be reordered before ST(B,2)
            ld(2, 1, 2),
        ]);
        let r = find_serial_reordering(&t).expect("figure 3 trace is SC");
        assert!(r.is_serial_reordering(&t));
    }

    #[test]
    fn non_sc_trace_rejected() {
        // Classic coherence violation: two processors observe the two
        // stores to one block in opposite orders.
        let t = Trace::from_ops([
            st(1, 1, 1),
            st(2, 1, 2),
            ld(3, 1, 1),
            ld(3, 1, 2),
            ld(4, 1, 2),
            ld(4, 1, 1),
        ]);
        assert!(!has_serial_reordering(&t));
    }

    #[test]
    fn stale_bottom_rejected() {
        let t = Trace::from_ops([st(1, 1, 1), ld(1, 1, 1), ldb(1, 1)]);
        assert!(!has_serial_reordering(&t));
    }

    #[test]
    fn count_matches_enumeration_on_independent_procs() {
        // Two processors touching different blocks: every interleaving is
        // serial, so the count is C(4,2) = 6 for 2+2 ops.
        let t = Trace::from_ops([st(1, 1, 1), ld(1, 1, 1), st(2, 2, 1), ld(2, 2, 1)]);
        assert_eq!(count_serial_reorderings(&t), 6);
    }

    #[test]
    fn count_zero_iff_not_sc() {
        let t = Trace::from_ops([ld(1, 1, 1)]);
        assert_eq!(count_serial_reorderings(&t), 0);
        assert!(!has_serial_reordering(&t));
    }
}
