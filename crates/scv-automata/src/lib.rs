//! Finite automata substrate.
//!
//! Theorem 3.1 reduces "is the observer a witness for the protocol?" to
//! language problems over regular (finite-word) automata: trace
//! *equivalence* between observer and protocol (property i), and checker
//! *acceptance* of every observer run (property ii), which is the language
//! inclusion `L(observer-runs) ⊆ L(checker)`. This crate implements the
//! needed machinery from scratch:
//!
//! * [`Nfa`] — nondeterministic finite automata over a dense `u32`
//!   alphabet, with ε-free construction helpers;
//! * [`Dfa`] — deterministic automata via subset construction
//!   ([`Nfa::determinize`]), with completion, complement, product,
//!   emptiness, and minimization (Hopcroft-style partition refinement);
//! * language operations: [`Dfa::intersect`], [`Dfa::complement`],
//!   [`Dfa::is_empty`], [`includes`] (language inclusion with
//!   counterexample extraction), and [`equivalent`].

use std::collections::{BTreeSet, HashMap, VecDeque};

/// A nondeterministic finite automaton over the alphabet `0..alphabet`.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Alphabet size; symbols are `0..alphabet`.
    pub alphabet: u32,
    /// `delta[state]` = list of `(symbol, successor)` pairs.
    pub delta: Vec<Vec<(u32, u32)>>,
    /// Initial states.
    pub initial: Vec<u32>,
    /// Accepting states.
    pub accepting: Vec<bool>,
}

impl Nfa {
    /// An NFA with `states` states and no transitions.
    pub fn new(alphabet: u32, states: usize) -> Self {
        Nfa {
            alphabet,
            delta: vec![Vec::new(); states],
            initial: Vec::new(),
            accepting: vec![false; states],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.delta.len()
    }

    /// Whether the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Add a state; returns its index.
    pub fn add_state(&mut self, accepting: bool) -> u32 {
        self.delta.push(Vec::new());
        self.accepting.push(accepting);
        (self.delta.len() - 1) as u32
    }

    /// Add a transition.
    pub fn add_transition(&mut self, from: u32, symbol: u32, to: u32) {
        debug_assert!(symbol < self.alphabet);
        self.delta[from as usize].push((symbol, to));
    }

    /// Does the NFA accept the word?
    pub fn accepts(&self, word: &[u32]) -> bool {
        let mut cur: BTreeSet<u32> = self.initial.iter().copied().collect();
        for &a in word {
            let mut next = BTreeSet::new();
            for &s in &cur {
                for &(sym, t) in &self.delta[s as usize] {
                    if sym == a {
                        next.insert(t);
                    }
                }
            }
            cur = next;
            if cur.is_empty() {
                return false;
            }
        }
        cur.iter().any(|&s| self.accepting[s as usize])
    }

    /// Subset construction: an equivalent complete DFA (with an implicit
    /// dead state for missing transitions, made explicit).
    pub fn determinize(&self) -> Dfa {
        let init: BTreeSet<u32> = self.initial.iter().copied().collect();
        let mut index: HashMap<BTreeSet<u32>, u32> = HashMap::new();
        let mut sets: Vec<BTreeSet<u32>> = Vec::new();
        let mut dfa = Dfa::new(self.alphabet, 0);
        index.insert(init.clone(), 0);
        sets.push(init.clone());
        dfa.push_state(init.iter().any(|&s| self.accepting[s as usize]));
        let mut queue = VecDeque::from([0u32]);
        while let Some(i) = queue.pop_front() {
            let set = sets[i as usize].clone();
            for a in 0..self.alphabet {
                let mut next = BTreeSet::new();
                for &s in &set {
                    for &(sym, t) in &self.delta[s as usize] {
                        if sym == a {
                            next.insert(t);
                        }
                    }
                }
                let j = match index.get(&next) {
                    Some(&j) => j,
                    None => {
                        let j = dfa.push_state(next.iter().any(|&s| self.accepting[s as usize]));
                        index.insert(next.clone(), j);
                        sets.push(next);
                        queue.push_back(j);
                        j
                    }
                };
                dfa.set_transition(i, a, j);
            }
        }
        dfa
    }
}

/// A complete deterministic finite automaton over `0..alphabet`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dfa {
    /// Alphabet size.
    pub alphabet: u32,
    /// `delta[state * alphabet + symbol]` = successor.
    pub delta: Vec<u32>,
    /// The initial state (0 by convention after construction).
    pub initial: u32,
    /// Accepting states.
    pub accepting: Vec<bool>,
}

impl Dfa {
    /// A DFA with `states` states and all transitions unset (0).
    pub fn new(alphabet: u32, states: usize) -> Self {
        Dfa {
            alphabet,
            delta: vec![0; states * alphabet as usize],
            initial: 0,
            accepting: vec![false; states],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.accepting.len()
    }

    /// Append a state; returns its index.
    pub fn push_state(&mut self, accepting: bool) -> u32 {
        self.accepting.push(accepting);
        self.delta
            .extend(std::iter::repeat_n(0, self.alphabet as usize));
        (self.accepting.len() - 1) as u32
    }

    /// Set `delta(from, symbol) = to`.
    pub fn set_transition(&mut self, from: u32, symbol: u32, to: u32) {
        self.delta[from as usize * self.alphabet as usize + symbol as usize] = to;
    }

    /// `delta(from, symbol)`.
    pub fn step(&self, from: u32, symbol: u32) -> u32 {
        self.delta[from as usize * self.alphabet as usize + symbol as usize]
    }

    /// Does the DFA accept the word?
    pub fn accepts(&self, word: &[u32]) -> bool {
        let mut s = self.initial;
        for &a in word {
            s = self.step(s, a);
        }
        self.accepting[s as usize]
    }

    /// Complement (the DFA must be complete, which all constructors here
    /// guarantee).
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accepting {
            *a = !*a;
        }
        out
    }

    /// Product automaton accepting the intersection of the languages.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut out = Dfa::new(self.alphabet, 0);
        let start = (self.initial, other.initial);
        index.insert(start, 0);
        out.push_state(self.accepting[start.0 as usize] && other.accepting[start.1 as usize]);
        let mut order = vec![start];
        let mut qi = 0usize;
        while qi < order.len() {
            let (x, y) = order[qi];
            let i = index[&(x, y)];
            for a in 0..self.alphabet {
                let nx = self.step(x, a);
                let ny = other.step(y, a);
                let j = match index.get(&(nx, ny)) {
                    Some(&j) => j,
                    None => {
                        let j = out.push_state(
                            self.accepting[nx as usize] && other.accepting[ny as usize],
                        );
                        index.insert((nx, ny), j);
                        order.push((nx, ny));
                        j
                    }
                };
                out.set_transition(i, a, j);
            }
            qi += 1;
        }
        out
    }

    /// Is the language empty? If not, returns a shortest accepted word.
    pub fn find_word(&self) -> Option<Vec<u32>> {
        let mut prev: Vec<Option<(u32, u32)>> = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([self.initial]);
        seen[self.initial as usize] = true;
        while let Some(s) = queue.pop_front() {
            if self.accepting[s as usize] {
                // Reconstruct the word.
                let mut word = Vec::new();
                let mut cur = s;
                while cur != self.initial || prev[cur as usize].is_some() {
                    let (p, a) = prev[cur as usize].expect("path to initial");
                    word.push(a);
                    cur = p;
                    if cur == self.initial && prev[cur as usize].is_none() {
                        break;
                    }
                }
                word.reverse();
                return Some(word);
            }
            for a in 0..self.alphabet {
                let t = self.step(s, a);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    prev[t as usize] = Some((s, a));
                    queue.push_back(t);
                }
            }
        }
        None
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        self.find_word().is_none()
    }

    /// Hopcroft-style minimization (partition refinement).
    pub fn minimize(&self) -> Dfa {
        let n = self.len();
        // Initial partition: accepting vs rejecting.
        let mut class: Vec<u32> = self.accepting.iter().map(|&a| a as u32).collect();
        let mut n_classes = 2;
        loop {
            // Refine: states are equivalent if same class and same class
            // signature on every symbol.
            let mut sig_index: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut new_class = vec![0u32; n];
            for s in 0..n {
                let sig: Vec<u32> = (0..self.alphabet)
                    .map(|a| class[self.step(s as u32, a) as usize])
                    .collect();
                let key = (class[s], sig);
                let next = sig_index.len() as u32;
                let c = *sig_index.entry(key).or_insert(next);
                new_class[s] = c;
            }
            let m = sig_index.len() as u32;
            if m == n_classes {
                class = new_class;
                break;
            }
            n_classes = m;
            class = new_class;
        }
        let mut out = Dfa::new(self.alphabet, n_classes as usize);
        for s in 0..n {
            let c = class[s];
            out.accepting[c as usize] = self.accepting[s];
            for a in 0..self.alphabet {
                out.set_transition(c, a, class[self.step(s as u32, a) as usize]);
            }
        }
        out.initial = class[self.initial as usize];
        out
    }
}

/// Language inclusion `L(a) ⊆ L(b)`: `Ok(())`, or a counterexample word in
/// `L(a) \ L(b)`.
pub fn includes(a: &Dfa, b: &Dfa) -> Result<(), Vec<u32>> {
    match a.intersect(&b.complement()).find_word() {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

/// Language equivalence, with a separating word on failure.
pub fn equivalent(a: &Dfa, b: &Dfa) -> Result<(), Vec<u32>> {
    includes(a, b)?;
    includes(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NFA for words over {0,1} containing the factor "11".
    fn contains_11() -> Nfa {
        let mut n = Nfa::new(2, 3);
        n.initial = vec![0];
        n.accepting[2] = true;
        n.add_transition(0, 0, 0);
        n.add_transition(0, 1, 0);
        n.add_transition(0, 1, 1);
        n.add_transition(1, 1, 2);
        n.add_transition(2, 0, 2);
        n.add_transition(2, 1, 2);
        n
    }

    /// DFA for words with an even number of 1s.
    fn even_ones() -> Dfa {
        let mut d = Dfa::new(2, 2);
        d.accepting[0] = true;
        d.set_transition(0, 0, 0);
        d.set_transition(0, 1, 1);
        d.set_transition(1, 0, 1);
        d.set_transition(1, 1, 0);
        d
    }

    #[test]
    fn nfa_accepts_and_rejects() {
        let n = contains_11();
        assert!(n.accepts(&[1, 1]));
        assert!(n.accepts(&[0, 1, 1, 0]));
        assert!(!n.accepts(&[1, 0, 1, 0]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn determinization_preserves_language() {
        let n = contains_11();
        let d = n.determinize();
        for w in 0..64u32 {
            for len in 0..6 {
                let word: Vec<u32> = (0..len).map(|i| (w >> i) & 1).collect();
                assert_eq!(n.accepts(&word), d.accepts(&word), "word {word:?}");
            }
        }
    }

    #[test]
    fn complement_flips_membership() {
        let d = even_ones();
        let c = d.complement();
        assert!(d.accepts(&[1, 1]));
        assert!(!c.accepts(&[1, 1]));
        assert!(!d.accepts(&[1]));
        assert!(c.accepts(&[1]));
    }

    #[test]
    fn intersection_is_conjunction() {
        let d1 = even_ones();
        let d2 = contains_11().determinize();
        let both = d1.intersect(&d2);
        assert!(both.accepts(&[1, 1])); // two ones, contains 11
        assert!(!both.accepts(&[1, 1, 1])); // odd ones
        assert!(!both.accepts(&[1, 0, 1])); // no 11 factor
        assert!(both.accepts(&[1, 1, 0, 1, 1]));
    }

    #[test]
    fn emptiness_and_witness() {
        let d = even_ones();
        // even ones ∧ odd ones = ∅.
        let empty = d.intersect(&d.complement());
        assert!(empty.is_empty());
        // The witness for a non-empty language is shortest.
        let w = d
            .intersect(&contains_11().determinize())
            .find_word()
            .unwrap();
        assert_eq!(w, vec![1, 1]);
    }

    #[test]
    fn inclusion_and_equivalence() {
        let all_with_11 = contains_11().determinize();
        let with_11_even = all_with_11.intersect(&even_ones());
        // L(with_11_even) ⊆ L(all_with_11), not conversely.
        assert_eq!(includes(&with_11_even, &all_with_11), Ok(()));
        let ce = includes(&all_with_11, &with_11_even).unwrap_err();
        assert!(all_with_11.accepts(&ce) && !with_11_even.accepts(&ce));
        assert!(equivalent(&all_with_11, &all_with_11.clone()).is_ok());
        assert!(equivalent(&all_with_11, &with_11_even).is_err());
    }

    #[test]
    fn minimization_shrinks_and_preserves() {
        let n = contains_11();
        let d = n.determinize();
        let m = d.minimize();
        assert!(m.len() <= d.len());
        assert_eq!(equivalent(&d, &m), Ok(()));
        // The minimal DFA for "contains 11" has exactly 3 states.
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn minimize_even_ones_is_two_states() {
        let m = even_ones().minimize();
        assert_eq!(m.len(), 2);
        assert_eq!(equivalent(&m, &even_ones()), Ok(()));
    }

    #[test]
    fn empty_word_handling() {
        let mut d = Dfa::new(1, 1);
        d.accepting[0] = true;
        d.set_transition(0, 0, 0);
        assert!(d.accepts(&[]));
        assert_eq!(d.find_word(), Some(vec![]));
    }
}
