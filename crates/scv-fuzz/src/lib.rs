//! Randomized-protocol differential fuzzing for the SC verification
//! pipeline.
//!
//! The crates below `scv-fuzz` each implement a piece of the Condon & Hu
//! verification method — observer generation, descriptor encoding, the
//! streaming checker, model checking. This crate tests the *composition*
//! by adversarial random search:
//!
//! * [`gen`] — a seeded generator of well-formed coherence-protocol FSMs
//!   with tracking labels: SC-by-construction family members, plus
//!   [`gen::Mutation`] operators injecting realistic bugs (dropped
//!   invalidations, stale reads, racy stores, lost writebacks);
//! * [`oracle`] — the differential stack: streamed checker vs whole-trace
//!   serial search vs descriptor round-trip vs the Gibbons–Korach
//!   baseline vs the model-checking verdict matrix — any disagreement is
//!   a bug in one of them;
//! * [`shrink`] — delta-debugging reduction of a disagreeing run to a
//!   1-minimal action sequence;
//! * [`corpus`] — shrunk reproducers serialized as committed `.case`
//!   files, replayed against the real oracles by ordinary `cargo test`;
//! * [`harness`] — the seeded, wall-clock-budgeted campaign driver behind
//!   `scv fuzz`, plus the fault-injection self-test of the pipeline.

pub mod corpus;
pub mod gen;
pub mod harness;
pub mod oracle;
pub mod shrink;

pub use corpus::{load_corpus, CorpusCase, Expectation};
pub use gen::{GenConfig, GenProtocol, Mutation};
pub use harness::{
    fault_injection_self_test, reference_corpus, run_fuzz, FoundDisagreement, FuzzOptions,
    FuzzReport,
};
pub use oracle::{check_run, drive, mc_matrix, Disagreement, Drive, McCheck, RunVerdict};
pub use shrink::{ddmin, replay};
