//! The differential oracle stack.
//!
//! Every fuzzed run is pushed through several independent implementations
//! of "is this behaviour sequentially consistent?" that share no code
//! paths, and any disagreement is a bug in one of them:
//!
//! 1. the **streamed finite-state checker** (observer → descriptor symbols
//!    → [`ScChecker`], the §3.3–3.4 pipeline under test);
//! 2. the **whole-trace ground truth** ([`has_serial_reordering`], direct
//!    memoized search over interleavings);
//! 3. the **descriptor round-trip**: the observer's symbol stream decoded
//!    back to a whole graph, checked for acyclicity;
//! 4. the **Gibbons–Korach baseline**: the witness extracted from the
//!    decoded graph, re-saturated and re-checked by [`BaselineChecker`];
//! 5. the **model-checking matrix**: `verify_protocol` verdicts across
//!    search engines × thread counts × symmetry modes.
//!
//! Soundness of the streaming checker (accept ⇒ the trace has a serial
//! reordering) is universal, so it is enforced on *every* run, mutated or
//! not. Completeness (reject ⇒ no serial reordering *for the observer's
//! witness*) is enforced through the baseline: a rejected run whose full
//! descriptor decodes to a valid, consistent witness is a disagreement.

use crate::gen::{GenConfig, GenProtocol};
use rand::Rng;
use scv_checker::{ScChecker, ScVerdict};
use scv_descriptor::{decode, Descriptor};
use scv_graph::{has_serial_reordering, BaselineChecker, Witness};
use scv_mc::{verify_protocol, Outcome, SearchStrategy, SymmetryMode, VerifyOptions};
use scv_observer::{Observer, ObserverConfig};
use scv_protocol::{Action, Protocol, Run};
use std::fmt;

/// A cross-oracle disagreement: two implementations of the SC question
/// gave conflicting answers on the same behaviour.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// Stable machine-readable tag (`accepted-non-sc-trace`, ...).
    pub kind: &'static str,
    /// Human-readable diagnosis.
    pub detail: String,
    /// The offending run's actions, when the disagreement is attached to a
    /// concrete run (empty for protocol-level verdict splits).
    pub actions: Vec<Action>,
}

impl Disagreement {
    fn on_run(kind: &'static str, detail: String, run: &Run) -> Disagreement {
        Disagreement {
            kind,
            detail,
            actions: run.steps.iter().map(|s| s.action).collect(),
        }
    }
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ({} actions)",
            self.kind,
            self.detail,
            self.actions.len()
        )
    }
}

/// Result of driving one run through observer + streaming checker.
pub struct Drive {
    /// The streaming checker's verdict.
    pub verdict: ScVerdict,
    /// The complete descriptor the observer emitted (the checker may have
    /// rejected partway through; the descriptor is always completed).
    pub descriptor: Descriptor,
}

impl Drive {
    /// Did the streaming checker accept?
    pub fn accepted(&self) -> bool {
        self.verdict.is_ok()
    }
}

/// Drive a run through the observer and the streaming SC checker,
/// collecting the full descriptor symbol stream on the side.
pub fn drive<P: Protocol>(protocol: &P, run: &Run) -> Drive {
    let mut observer = Observer::new(ObserverConfig::from_protocol(protocol));
    let mut checker = Some(ScChecker::new(observer.k()));
    let mut descriptor = Descriptor::new(observer.k());
    let mut verdict: ScVerdict = Ok(());
    let mut syms = Vec::new();
    for step in &run.steps {
        syms.clear();
        observer.step(step, &mut syms);
        feed(&mut checker, &mut verdict, &syms);
        descriptor.symbols.extend(syms.iter().cloned());
    }
    syms.clear();
    observer.finish(&mut syms);
    feed(&mut checker, &mut verdict, &syms);
    descriptor.symbols.extend(syms.iter().cloned());
    if verdict.is_ok() {
        if let Some(c) = checker.take() {
            verdict = c.finish();
        }
    }
    Drive {
        verdict,
        descriptor,
    }
}

fn feed(checker: &mut Option<ScChecker>, verdict: &mut ScVerdict, syms: &[scv_descriptor::Symbol]) {
    if verdict.is_err() {
        return;
    }
    if let Some(c) = checker.as_mut() {
        for sym in syms {
            if let Err(e) = c.step(sym) {
                *verdict = Err(e);
                return;
            }
        }
    }
}

/// The per-run oracle verdicts that agreed.
#[derive(Clone, Copy, Debug)]
pub struct RunVerdict {
    /// Streaming checker accepted.
    pub accepted: bool,
    /// The trace has a serial reordering (ground truth).
    pub sc_trace: bool,
}

/// Check one executed run against the whole differential stack (oracles
/// 1–4). `guaranteed_sc` asserts the protocol is SC by construction, in
/// class Γ with truthful labels — any rejection is then a disagreement.
pub fn check_run<P: Protocol>(
    protocol: &P,
    run: &Run,
    guaranteed_sc: bool,
) -> Result<RunVerdict, Disagreement> {
    let d = drive(protocol, run);
    let trace = run.trace();
    let sc_trace = has_serial_reordering(&trace);
    match &d.verdict {
        Ok(()) => {
            // Soundness: accept ⇒ the trace is SC. Universal.
            if !sc_trace {
                return Err(Disagreement::on_run(
                    "accepted-non-sc-trace",
                    format!("checker accepted but trace [{trace}] has no serial reordering"),
                    run,
                ));
            }
            // Descriptor round-trip: the accepted symbol stream must
            // decode to an acyclic graph...
            let g = match decode(&d.descriptor) {
                Ok((g, _)) => g,
                Err(e) => {
                    return Err(Disagreement::on_run(
                        "accepted-undecodable-descriptor",
                        format!("checker accepted but decode failed: {e}"),
                        run,
                    ))
                }
            };
            if !g.is_acyclic() {
                return Err(Disagreement::on_run(
                    "accepted-cyclic-descriptor",
                    "checker accepted but the decoded graph has a cycle".into(),
                    run,
                ));
            }
            // ...whose extracted witness the Gibbons–Korach baseline
            // independently confirms.
            let cg = match g.to_constraint_graph() {
                Ok(cg) => cg,
                Err(e) => {
                    return Err(Disagreement::on_run(
                        "accepted-malformed-graph",
                        format!("decoded graph is not a constraint graph: {e}"),
                        run,
                    ))
                }
            };
            let w = Witness::from_constraint_graph(&trace, &cg);
            let baseline_ok =
                w.validate(&trace).is_ok() && BaselineChecker::check(&trace, &w).is_consistent();
            if !baseline_ok {
                return Err(Disagreement::on_run(
                    "baseline-rejects-accepted-witness",
                    "streaming checker accepted but the baseline rejects the same witness".into(),
                    run,
                ));
            }
        }
        Err(e) => {
            if guaranteed_sc {
                return Err(Disagreement::on_run(
                    "rejected-guaranteed-sc",
                    format!("checker rejected a run of an SC-by-construction protocol: {e}"),
                    run,
                ));
            }
            // Completeness cross-check: if the *full* descriptor decodes
            // to a valid acyclic constraint graph whose witness the
            // baseline accepts, the streaming rejection was wrong.
            if let Ok((g, _)) = decode(&d.descriptor) {
                if g.is_acyclic() {
                    if let Ok(cg) = g.to_constraint_graph() {
                        let w = Witness::from_constraint_graph(&trace, &cg);
                        if w.validate(&trace).is_ok()
                            && BaselineChecker::check(&trace, &w).is_consistent()
                        {
                            return Err(Disagreement::on_run(
                                "baseline-accepts-rejected-run",
                                format!(
                                    "checker rejected ({e}) but the decoded witness is consistent"
                                ),
                                run,
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(RunVerdict {
        accepted: d.verdict.is_ok(),
        sc_trace,
    })
}

/// Outcome of the model-checking verdict matrix (oracle 5).
#[derive(Clone, Copy, Debug)]
pub struct McCheck {
    /// Engine/symmetry combinations run.
    pub combos: usize,
    /// Some combination reported a violation.
    pub any_violation: bool,
    /// Some combination hit its state cap (Bounded).
    pub any_bounded: bool,
}

fn combo_opts(
    threads: usize,
    strategy: SearchStrategy,
    symmetry: SymmetryMode,
    max_states: usize,
) -> VerifyOptions {
    VerifyOptions::new()
        .threads(threads)
        .strategy(strategy)
        .symmetry(symmetry)
        .max_states(max_states)
}

fn combo_tag(threads: usize, strategy: SearchStrategy, symmetry: SymmetryMode) -> String {
    format!("{strategy:?}/t{threads}/{symmetry:?}")
}

/// Run the model-checking matrix on a generated protocol and check the
/// verdicts against each other and against the construction.
///
/// A fixed baseline combination (sequential, symmetry off) runs first;
/// `extra` further combinations are drawn at random from
/// engines × {1,4} threads × symmetry modes. Agreement is on the *safe
/// class*: with `expect_violation` no combination may report `Verified`,
/// and without it no combination may report `Violation` (`Bounded` is
/// always permitted — caps are per-combination).
pub fn mc_matrix<R: Rng>(
    cfg: &GenConfig,
    expect_violation: bool,
    extra: usize,
    max_states: usize,
    rng: &mut R,
) -> Result<McCheck, Disagreement> {
    let strategies = [SearchStrategy::WorkStealing, SearchStrategy::LevelSync];
    let modes = [SymmetryMode::Off, SymmetryMode::Proc, SymmetryMode::Full];
    let mut combos = vec![(1usize, SearchStrategy::WorkStealing, SymmetryMode::Off)];
    for _ in 0..extra {
        combos.push((
            if rng.gen_bool(0.5) { 1 } else { 4 },
            strategies[rng.gen_range(0..strategies.len())],
            modes[rng.gen_range(0..modes.len())],
        ));
    }
    let mut check = McCheck {
        combos: combos.len(),
        any_violation: false,
        any_bounded: false,
    };
    for (threads, strategy, symmetry) in combos {
        let proto = GenProtocol::new(*cfg);
        let out = verify_protocol(proto, combo_opts(threads, strategy, symmetry, max_states));
        let tag = combo_tag(threads, strategy, symmetry);
        match out {
            Outcome::Verified { .. } if expect_violation => {
                return Err(Disagreement {
                    kind: "mc-verified-buggy-protocol",
                    detail: format!("{tag} verified a mutation-injected protocol exhaustively"),
                    actions: Vec::new(),
                });
            }
            Outcome::Violation { run, reason, .. } if !expect_violation => {
                return Err(Disagreement {
                    kind: "mc-violation-on-sc-protocol",
                    detail: format!("{tag} reported a violation on an SC protocol: {reason}"),
                    actions: run,
                });
            }
            Outcome::Violation { .. } => check.any_violation = true,
            Outcome::Bounded { .. } => check.any_bounded = true,
            Outcome::Verified { .. } => {}
            // The matrix never configures a budget or cancel token, so an
            // interrupted search here means the options plumbing broke.
            Outcome::Inconclusive { reason, .. } => {
                return Err(Disagreement {
                    kind: "mc-unexpected-interrupt",
                    detail: format!("{tag} was interrupted ({reason}) with no budget configured"),
                    actions: Vec::new(),
                });
            }
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Mutation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_protocol::{litmus, realization, Runner};
    use scv_types::Params;

    fn mutated_cfg(m: Mutation) -> GenConfig {
        let mut rng = SmallRng::seed_from_u64(0);
        GenConfig {
            mutation: Some(m),
            ..GenConfig::sample_mutated(&mut rng)
        }
    }

    #[test]
    fn random_sc_runs_pass_the_whole_stack() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..15 {
            let cfg = GenConfig::sample(&mut rng);
            let mut r = Runner::new(GenProtocol::new(cfg));
            r.run_random(36, 0.5, &mut rng);
            let proto = r.protocol().clone();
            let v = check_run(&proto, r.run(), true).unwrap_or_else(|d| panic!("{cfg}: {d}"));
            assert!(v.accepted && v.sc_trace);
        }
    }

    #[test]
    fn realized_violations_are_rejected_not_disagreements() {
        for m in Mutation::ALL {
            let cfg = mutated_cfg(m);
            let proto = GenProtocol::new(cfg);
            let run =
                realization(&proto, &litmus::message_passing().trace, 8).expect("realizes MP");
            let v = check_run(&proto, &run, false).unwrap_or_else(|d| panic!("{}: {d}", m.tag()));
            assert!(!v.accepted, "{}: checker must reject the MP run", m.tag());
            assert!(!v.sc_trace);
        }
    }

    #[test]
    fn mutated_random_runs_never_disagree() {
        // Mutated protocols may produce SC or non-SC runs; either way the
        // oracles must agree among themselves.
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..12 {
            let cfg = GenConfig::sample_mutated(&mut rng);
            let mut r = Runner::new(GenProtocol::new(cfg));
            r.run_random(36, 0.5, &mut rng);
            let proto = r.protocol().clone();
            check_run(&proto, r.run(), false).unwrap_or_else(|d| panic!("{cfg}: {d}"));
        }
    }

    #[test]
    fn mc_matrix_flags_a_mutated_protocol() {
        let mut rng = SmallRng::seed_from_u64(13);
        let cfg = mutated_cfg(Mutation::StaleRead);
        let check = mc_matrix(&cfg, true, 1, 2_000_000, &mut rng).expect("no split");
        assert!(
            check.any_violation,
            "baseline combo must find the violation"
        );
    }

    #[test]
    fn mc_matrix_is_quiet_on_an_sc_protocol() {
        let mut rng = SmallRng::seed_from_u64(14);
        let cfg = GenConfig {
            params: Params::new(2, 1, 1),
            shared: true,
            upgrade: false,
            evict_m: true,
            evict_s: false,
            downgrade: false,
            atomic_mem: false,
            mutation: None,
        };
        let check = mc_matrix(&cfg, false, 2, 50_000, &mut rng).expect("no violation");
        assert!(!check.any_violation);
    }
}
