//! The shrunk-reproducer regression corpus.
//!
//! Every disagreement the fuzzer finds is shrunk and serialized as a
//! `.case` file — a small, human-readable, self-contained reproducer:
//! the protocol configuration, the expected streaming-checker verdict,
//! and the action sequence to replay. Committed cases are replayed
//! against the real oracles by ordinary `cargo test` (see the workspace
//! `tests/fuzz_corpus.rs`), so a fixed bug stays fixed.
//!
//! ```text
//! # free-form comments
//! name: stale-read-mp
//! config: p=2 b=2 v=1 shared=1 upgrade=0 evict_m=1 evict_s=0 downgrade=0 atomic=0 mutation=stale-read
//! expect: reject
//! note: shrunk from seed 42 case 17
//! actions:
//! I BusRdX 1
//! ST 1 1 1
//! LD 2 1 0
//! ```

use crate::gen::GenConfig;
use crate::oracle::{check_run, RunVerdict};
use crate::shrink::replay;
use scv_protocol::{Action, LocId};
use scv_types::{BlockId, Op, ProcId, Value};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::gen::GenProtocol;

/// The verdict a corpus case pins down.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// The streaming checker must reject the replayed run.
    Reject,
    /// The streaming checker must accept, and the trace must be SC.
    Accept,
}

impl Expectation {
    fn tag(self) -> &'static str {
        match self {
            Expectation::Reject => "reject",
            Expectation::Accept => "accept",
        }
    }
}

/// One serializable regression case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusCase {
    /// File-stem-safe identifier.
    pub name: String,
    /// The protocol family member to instantiate.
    pub config: GenConfig,
    /// The pinned verdict.
    pub expect: Expectation,
    /// Free-form provenance (seed, case index, fuzzer version).
    pub note: String,
    /// The action sequence to replay from the initial state.
    pub actions: Vec<Action>,
}

/// The closed set of internal action names the generated family uses;
/// parsing maps the textual name back to the `&'static str` the protocol
/// compares against.
const INTERNAL_NAMES: [&str; 6] = [
    "BusRd",
    "BusRdX",
    "BusUpgr",
    "EvictM",
    "EvictS",
    "Downgrade",
];

fn intern_name(s: &str) -> Option<&'static str> {
    INTERNAL_NAMES.iter().find(|n| **n == s).copied()
}

fn action_line(a: &Action) -> String {
    match a {
        Action::Mem(op) => format!(
            "{} {} {} {}",
            if op.is_store() { "ST" } else { "LD" },
            op.proc.0,
            op.block.0,
            op.value.0
        ),
        Action::Internal(name, payload) => format!("I {name} {payload}"),
    }
}

fn parse_action(line: &str) -> Result<Action, String> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    let err = || format!("bad action line: {line:?}");
    match parts.as_slice() {
        [kind @ ("ST" | "LD"), p, b, v] => {
            let p = ProcId(p.parse().map_err(|_| err())?);
            let b = BlockId(b.parse().map_err(|_| err())?);
            let v = Value(v.parse().map_err(|_| err())?);
            Ok(Action::Mem(if *kind == "ST" {
                Op::store(p, b, v)
            } else {
                Op::load(p, b, v)
            }))
        }
        ["I", name, payload] => {
            let name = intern_name(name).ok_or_else(|| format!("unknown internal: {name}"))?;
            let payload: LocId = payload.parse().map_err(|_| err())?;
            Ok(Action::Internal(name, payload))
        }
        _ => Err(err()),
    }
}

impl CorpusCase {
    /// Serialize to the `.case` text format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "name: {}", self.name);
        let _ = writeln!(out, "config: {}", self.config.to_line());
        let _ = writeln!(out, "expect: {}", self.expect.tag());
        if !self.note.is_empty() {
            let _ = writeln!(out, "note: {}", self.note);
        }
        let _ = writeln!(out, "actions:");
        for a in &self.actions {
            let _ = writeln!(out, "{}", action_line(a));
        }
        out
    }

    /// Parse the `.case` text format.
    pub fn parse(text: &str) -> Result<CorpusCase, String> {
        let mut name = None;
        let mut config = None;
        let mut expect = None;
        let mut note = String::new();
        let mut actions = Vec::new();
        let mut in_actions = false;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if in_actions {
                actions.push(parse_action(line)?);
                continue;
            }
            let (key, val) = line
                .split_once(':')
                .ok_or_else(|| format!("bad header line: {line:?}"))?;
            let val = val.trim();
            match key.trim() {
                "name" => name = Some(val.to_string()),
                "config" => {
                    config = Some(
                        GenConfig::from_line(val).ok_or_else(|| format!("bad config: {val}"))?,
                    )
                }
                "expect" => {
                    expect = Some(match val {
                        "reject" => Expectation::Reject,
                        "accept" => Expectation::Accept,
                        _ => return Err(format!("bad expectation: {val}")),
                    })
                }
                "note" => note = val.to_string(),
                "actions" => in_actions = true,
                k => return Err(format!("unknown key: {k}")),
            }
        }
        Ok(CorpusCase {
            name: name.ok_or("missing name")?,
            config: config.ok_or("missing config")?,
            expect: expect.ok_or("missing expect")?,
            note,
            actions,
        })
    }

    /// Replay the case through the real oracle stack: the actions must
    /// replay, the full differential check must not disagree, and the
    /// streaming verdict must match the expectation.
    pub fn replay_check(&self) -> Result<RunVerdict, String> {
        let proto = GenProtocol::new(self.config);
        let run = replay(&proto, &self.actions)
            .ok_or_else(|| format!("{}: actions do not replay", self.name))?;
        let v = check_run(&proto, &run, false).map_err(|d| format!("{}: {d}", self.name))?;
        let want_accept = self.expect == Expectation::Accept;
        if v.accepted != want_accept {
            return Err(format!(
                "{}: expected {} but checker {}",
                self.name,
                self.expect.tag(),
                if v.accepted { "accepted" } else { "rejected" }
            ));
        }
        if want_accept && !v.sc_trace {
            return Err(format!("{}: accepted trace is not SC", self.name));
        }
        Ok(v)
    }

    /// Write the case into `dir` as `<name>.case`, creating `dir` if
    /// needed. Returns the path written.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.case", self.name));
        fs::write(&path, self.serialize())?;
        Ok(path)
    }
}

/// Load every `*.case` file under `dir` (sorted by file name; missing or
/// empty directories yield an empty corpus).
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusCase>, String> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect(),
        Err(_) => return Ok(Vec::new()),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            CorpusCase::parse(&text).map_err(|e| format!("{}: {e}", p.display()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Mutation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_protocol::{litmus, realization};

    fn mp_case(m: Mutation) -> CorpusCase {
        let mut rng = SmallRng::seed_from_u64(0);
        let config = GenConfig {
            mutation: Some(m),
            ..GenConfig::sample_mutated(&mut rng)
        };
        let run = realization(
            &GenProtocol::new(config),
            &litmus::message_passing().trace,
            8,
        )
        .expect("realizes MP");
        CorpusCase {
            name: format!("mp-{}", m.tag()),
            config,
            expect: Expectation::Reject,
            note: "unit test".into(),
            actions: run.steps.iter().map(|s| s.action).collect(),
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        for m in Mutation::ALL {
            let case = mp_case(m);
            let parsed = CorpusCase::parse(&case.serialize()).unwrap();
            assert_eq!(parsed, case);
        }
    }

    #[test]
    fn replay_check_validates_real_cases() {
        for m in Mutation::ALL {
            let case = mp_case(m);
            let v = case.replay_check().unwrap_or_else(|e| panic!("{e}"));
            assert!(!v.accepted && !v.sc_trace);
        }
    }

    #[test]
    fn replay_check_catches_a_wrong_expectation() {
        let mut case = mp_case(Mutation::StaleRead);
        case.expect = Expectation::Accept;
        assert!(case.replay_check().is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(CorpusCase::parse("name: x\nactions:\nST 1 1 1").is_err()); // no config
        assert!(CorpusCase::parse("nonsense").is_err());
        let good = mp_case(Mutation::RacyStore).serialize();
        assert!(CorpusCase::parse(&good.replace("reject", "maybe")).is_err());
        assert!(CorpusCase::parse(&good.replace("ST", "XX")).is_err());
        let bogus = format!("{good}I BusBogus 1\n");
        assert!(CorpusCase::parse(&bogus).is_err());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("scv-fuzz-corpus-{}", std::process::id()));
        let a = mp_case(Mutation::StaleRead);
        let b = mp_case(Mutation::LostWriteback);
        a.save(&dir).unwrap();
        b.save(&dir).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded.contains(&a) && loaded.contains(&b));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_corpus(&dir).unwrap().is_empty());
    }
}
