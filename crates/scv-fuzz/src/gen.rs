//! Seeded random protocol generation.
//!
//! [`GenProtocol`] is a *family* of snooping write-invalidate protocols on
//! an atomic bus, parameterized by [`GenConfig`]: the feature flags select
//! which coherence transitions exist (shared fills, upgrades, evictions,
//! owner downgrades, uncached atomic memory operations), so every sampled
//! configuration is a structurally different FSM. Unmutated configurations
//! are sequentially consistent *by construction* — stores happen only at
//! the unique exclusive copy (or atomically at memory), so the atomic bus
//! serializes the stores to each block in real time and the protocol has
//! the real-time ST reordering property of §4.2 with truthful tracking
//! labels.
//!
//! [`Mutation`] operators inject realistic coherence bugs — dropped
//! invalidations, stale reads of invalidated lines, racy stores that skip
//! the upgrade, and lost writebacks — each of which makes the classic
//! message-passing violation reachable (with `p ≥ 2`, `b ≥ 2`, shared
//! fills, and M-evictions, which [`GenConfig::sample_mutated`] forces).

use rand::Rng;
use scv_protocol::{Action, CopySrc, LocId, Protocol, Symmetry, Tracking, Transition};
use scv_types::{BlockId, Op, Params, ProcId, SymDims, SymPerm, Value};
use std::fmt;

/// A bug-injecting mutation operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Bus invalidations (`BusRdX`, `BusUpgr`) silently spare the
    /// highest-numbered sharer, which keeps a stale copy.
    DroppedInvalidation,
    /// Loads may read an invalid line's (initial `⊥`) content without
    /// refetching — the stale-read bug.
    StaleRead,
    /// Stores are permitted in the S state without a bus upgrade, so other
    /// sharers keep stale copies.
    RacyStore,
    /// `BusRd` from a dirty owner skips the writeback: the requester fills
    /// from stale memory while the owner's value is silently dropped to S.
    LostWriteback,
}

impl Mutation {
    /// All mutation operators.
    pub const ALL: [Mutation; 4] = [
        Mutation::DroppedInvalidation,
        Mutation::StaleRead,
        Mutation::RacyStore,
        Mutation::LostWriteback,
    ];

    /// Stable textual tag used by the corpus serialization.
    pub fn tag(self) -> &'static str {
        match self {
            Mutation::DroppedInvalidation => "dropped-invalidation",
            Mutation::StaleRead => "stale-read",
            Mutation::RacyStore => "racy-store",
            Mutation::LostWriteback => "lost-writeback",
        }
    }

    /// Parse a [`Mutation::tag`].
    pub fn from_tag(s: &str) -> Option<Mutation> {
        Mutation::ALL.into_iter().find(|m| m.tag() == s)
    }
}

/// One sampled member of the generated protocol family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GenConfig {
    /// Size parameters.
    pub params: Params,
    /// `BusRd` fills to S are available (otherwise every fill is `BusRdX`).
    pub shared: bool,
    /// `BusUpgr` (S → M without refetch) is available.
    pub upgrade: bool,
    /// Dirty lines can be evicted (writeback + invalidate).
    pub evict_m: bool,
    /// Clean lines can be evicted silently.
    pub evict_s: bool,
    /// Owners can downgrade M → S with a writeback, keeping the copy.
    pub downgrade: bool,
    /// Blocks cached nowhere support atomic `LD`/`ST` directly on memory.
    pub atomic_mem: bool,
    /// The injected bug, if any.
    pub mutation: Option<Mutation>,
}

impl GenConfig {
    /// Sample a guaranteed-SC configuration.
    pub fn sample<R: Rng>(rng: &mut R) -> GenConfig {
        GenConfig {
            params: Params::new(
                rng.gen_range(1..=3),
                rng.gen_range(1..=2),
                rng.gen_range(1..=2),
            ),
            shared: rng.gen_bool(0.8),
            upgrade: rng.gen_bool(0.5),
            evict_m: rng.gen_bool(0.8),
            evict_s: rng.gen_bool(0.5),
            downgrade: rng.gen_bool(0.3),
            atomic_mem: rng.gen_bool(0.3),
            mutation: None,
        }
    }

    /// Sample a mutated configuration. The parameters and features are
    /// clamped so the injected bug's violation is reachable (and cheap to
    /// hunt): two processors, two blocks, one value, shared fills and
    /// M-evictions on, no downgrade/atomic-memory noise.
    pub fn sample_mutated<R: Rng>(rng: &mut R) -> GenConfig {
        GenConfig {
            params: Params::new(2, 2, 1),
            shared: true,
            upgrade: rng.gen_bool(0.5),
            evict_m: true,
            evict_s: rng.gen_bool(0.5),
            downgrade: false,
            atomic_mem: false,
            mutation: Some(Mutation::ALL[rng.gen_range(0..Mutation::ALL.len())]),
        }
    }

    /// Stable one-line serialization (the corpus header format).
    pub fn to_line(&self) -> String {
        format!(
            "p={} b={} v={} shared={} upgrade={} evict_m={} evict_s={} downgrade={} atomic={} mutation={}",
            self.params.p,
            self.params.b,
            self.params.v,
            self.shared as u8,
            self.upgrade as u8,
            self.evict_m as u8,
            self.evict_s as u8,
            self.downgrade as u8,
            self.atomic_mem as u8,
            self.mutation.map(Mutation::tag).unwrap_or("none"),
        )
    }

    /// Parse [`GenConfig::to_line`].
    pub fn from_line(line: &str) -> Option<GenConfig> {
        let mut p = None;
        let mut b = None;
        let mut v = None;
        let mut flags = [None::<bool>; 6];
        let mut mutation = None;
        for field in line.split_whitespace() {
            let (key, val) = field.split_once('=')?;
            match key {
                "p" => p = val.parse().ok(),
                "b" => b = val.parse().ok(),
                "v" => v = val.parse().ok(),
                "shared" => flags[0] = Some(val == "1"),
                "upgrade" => flags[1] = Some(val == "1"),
                "evict_m" => flags[2] = Some(val == "1"),
                "evict_s" => flags[3] = Some(val == "1"),
                "downgrade" => flags[4] = Some(val == "1"),
                "atomic" => flags[5] = Some(val == "1"),
                "mutation" => {
                    mutation = Some(if val == "none" {
                        None
                    } else {
                        Some(Mutation::from_tag(val)?)
                    })
                }
                _ => return None,
            }
        }
        Some(GenConfig {
            params: Params::new(p?, b?, v?),
            shared: flags[0]?,
            upgrade: flags[1]?,
            evict_m: flags[2]?,
            evict_s: flags[3]?,
            downgrade: flags[4]?,
            atomic_mem: flags[5]?,
            mutation: mutation?,
        })
    }
}

impl fmt::Display for GenConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Cache line state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GLine {
    /// Modified: exclusive, dirty.
    M,
    /// Shared: clean, read-only.
    S,
    /// Invalid (the value field retains the dead content).
    I,
}

/// Protocol state: one line per (processor, block) plus memory, laid out
/// exactly like the MSI reference protocol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GenState {
    /// `lines[p.idx()*b + blk.idx()]` = (state, cached value).
    pub lines: Vec<(GLine, Value)>,
    /// Memory contents per block.
    pub mem: Vec<Value>,
}

/// A generated protocol: one member of the configurable family.
#[derive(Clone, Debug)]
pub struct GenProtocol {
    cfg: GenConfig,
}

impl GenProtocol {
    /// Instantiate the family member selected by `cfg`.
    pub fn new(cfg: GenConfig) -> Self {
        GenProtocol { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &GenConfig {
        &self.cfg
    }

    /// Location id of processor `p`'s cache line for `b`.
    pub fn cache_loc(&self, p: ProcId, b: BlockId) -> LocId {
        (p.idx() * self.cfg.params.b as usize + b.idx() + 1) as LocId
    }

    /// Location id of the memory word for `b`.
    pub fn mem_loc(&self, b: BlockId) -> LocId {
        (self.cfg.params.p as usize * self.cfg.params.b as usize + b.idx() + 1) as LocId
    }

    fn line(&self, s: &GenState, p: ProcId, b: BlockId) -> (GLine, Value) {
        s.lines[p.idx() * self.cfg.params.b as usize + b.idx()]
    }

    fn line_mut<'a>(&self, s: &'a mut GenState, p: ProcId, b: BlockId) -> &'a mut (GLine, Value) {
        &mut s.lines[p.idx() * self.cfg.params.b as usize + b.idx()]
    }

    fn owner(&self, s: &GenState, b: BlockId) -> Option<ProcId> {
        self.cfg
            .params
            .procs()
            .find(|&q| self.line(s, q, b).0 == GLine::M)
    }

    fn sharers(&self, s: &GenState, b: BlockId, except: ProcId) -> Vec<ProcId> {
        self.cfg
            .params
            .procs()
            .filter(|&q| q != except && self.line(s, q, b).0 == GLine::S)
            .collect()
    }

    fn uncached(&self, s: &GenState, b: BlockId) -> bool {
        self.cfg
            .params
            .procs()
            .all(|q| self.line(s, q, b).0 == GLine::I)
    }

    /// Invalidate `b` at every processor in `victims` — except, under
    /// [`Mutation::DroppedInvalidation`], the highest-numbered one.
    fn invalidate(
        &self,
        s: &mut GenState,
        b: BlockId,
        victims: &[ProcId],
        copies: &mut Vec<(LocId, CopySrc)>,
    ) {
        let spared = if self.cfg.mutation == Some(Mutation::DroppedInvalidation) {
            victims.iter().max().copied()
        } else {
            None
        };
        for &q in victims {
            if Some(q) == spared {
                continue;
            }
            self.line_mut(s, q, b).0 = GLine::I;
            copies.push((self.cache_loc(q, b), CopySrc::Invalid));
        }
    }
}

impl Protocol for GenProtocol {
    type State = GenState;

    fn name(&self) -> &'static str {
        match self.cfg.mutation {
            None => "gen",
            Some(Mutation::DroppedInvalidation) => "gen-dropped-invalidation",
            Some(Mutation::StaleRead) => "gen-stale-read",
            Some(Mutation::RacyStore) => "gen-racy-store",
            Some(Mutation::LostWriteback) => "gen-lost-writeback",
        }
    }

    fn params(&self) -> Params {
        self.cfg.params
    }

    fn locations(&self) -> u32 {
        (self.cfg.params.p as u32 + 1) * self.cfg.params.b as u32
    }

    fn initial(&self) -> Self::State {
        GenState {
            lines: vec![
                (GLine::I, Value::BOTTOM);
                (self.cfg.params.p * self.cfg.params.b) as usize
            ],
            mem: vec![Value::BOTTOM; self.cfg.params.b as usize],
        }
    }

    fn transitions(&self, s: &Self::State) -> Vec<Transition<Self::State>> {
        let cfg = &self.cfg;
        let mut out = Vec::new();
        for p in cfg.params.procs() {
            for b in cfg.params.blocks() {
                let (line, val) = self.line(s, p, b);
                if line == GLine::M || line == GLine::S {
                    // Hit: load the cached value.
                    out.push(Transition {
                        action: Action::Mem(Op::load(p, b, val)),
                        next: s.clone(),
                        tracking: Tracking::mem(self.cache_loc(p, b)),
                    });
                }
                if line == GLine::I && cfg.mutation == Some(Mutation::StaleRead) && val.is_bottom()
                {
                    // Stale read: the invalid line's dead (initial) content
                    // is served without a refetch.
                    out.push(Transition {
                        action: Action::Mem(Op::load(p, b, val)),
                        next: s.clone(),
                        tracking: Tracking::mem(self.cache_loc(p, b)),
                    });
                }
                if line == GLine::M
                    || (line == GLine::S && cfg.mutation == Some(Mutation::RacyStore))
                {
                    // Store hit — in M, or racily in S under the mutation.
                    for v in cfg.params.values() {
                        let mut next = s.clone();
                        self.line_mut(&mut next, p, b).1 = v;
                        out.push(Transition {
                            action: Action::Mem(Op::store(p, b, v)),
                            next,
                            tracking: Tracking::mem(self.cache_loc(p, b)),
                        });
                    }
                }
                if line == GLine::M && cfg.evict_m {
                    // Writeback-eviction.
                    let mut next = s.clone();
                    let mut copies = vec![(self.mem_loc(b), CopySrc::Loc(self.cache_loc(p, b)))];
                    next.mem[b.idx()] = val;
                    self.line_mut(&mut next, p, b).0 = GLine::I;
                    copies.push((self.cache_loc(p, b), CopySrc::Invalid));
                    out.push(Transition {
                        action: Action::Internal("EvictM", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(copies),
                    });
                }
                if line == GLine::M && cfg.downgrade {
                    // M -> S writeback that keeps the copy.
                    let mut next = s.clone();
                    next.mem[b.idx()] = val;
                    self.line_mut(&mut next, p, b).0 = GLine::S;
                    out.push(Transition {
                        action: Action::Internal("Downgrade", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(vec![(
                            self.mem_loc(b),
                            CopySrc::Loc(self.cache_loc(p, b)),
                        )]),
                    });
                }
                if line == GLine::S {
                    if cfg.evict_s {
                        // Silent eviction.
                        let mut next = s.clone();
                        self.line_mut(&mut next, p, b).0 = GLine::I;
                        out.push(Transition {
                            action: Action::Internal("EvictS", self.cache_loc(p, b)),
                            next,
                            tracking: Tracking::copies(vec![(
                                self.cache_loc(p, b),
                                CopySrc::Invalid,
                            )]),
                        });
                    }
                    if cfg.upgrade {
                        // BusUpgr: S -> M, invalidating other sharers.
                        let mut next = s.clone();
                        let mut copies = Vec::new();
                        let sharers = self.sharers(s, b, p);
                        self.invalidate(&mut next, b, &sharers, &mut copies);
                        self.line_mut(&mut next, p, b).0 = GLine::M;
                        out.push(Transition {
                            action: Action::Internal("BusUpgr", self.cache_loc(p, b)),
                            next,
                            tracking: Tracking::copies(copies),
                        });
                    }
                }
                if line == GLine::I {
                    // BusRdX: I -> M; invalidate everyone else. Always
                    // available — it is the only path to the M state.
                    // Emitted before BusRd so depth-first realization
                    // search prefers the direct route to M, which keeps
                    // shrunk reproducers short.
                    let mut next = s.clone();
                    let mut copies = Vec::new();
                    let fill_val = match self.owner(s, b) {
                        Some(q) => {
                            let qval = self.line(s, q, b).1;
                            copies.push((self.cache_loc(p, b), CopySrc::Loc(self.cache_loc(q, b))));
                            self.line_mut(&mut next, q, b).0 = GLine::I;
                            copies.push((self.cache_loc(q, b), CopySrc::Invalid));
                            qval
                        }
                        None => {
                            copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                            s.mem[b.idx()]
                        }
                    };
                    let sharers = self.sharers(s, b, p);
                    self.invalidate(&mut next, b, &sharers, &mut copies);
                    *self.line_mut(&mut next, p, b) = (GLine::M, fill_val);
                    out.push(Transition {
                        action: Action::Internal("BusRdX", self.cache_loc(p, b)),
                        next,
                        tracking: Tracking::copies(copies),
                    });
                    if cfg.shared {
                        // BusRd: I -> S; source is the owner (with
                        // writeback, unless lost) or memory.
                        let mut next = s.clone();
                        let mut copies = Vec::new();
                        match self.owner(s, b) {
                            Some(q) if cfg.mutation == Some(Mutation::LostWriteback) => {
                                // Bug: the owner downgrades without writing
                                // back; the requester fills stale memory.
                                self.line_mut(&mut next, q, b).0 = GLine::S;
                                copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                                *self.line_mut(&mut next, p, b) = (GLine::S, s.mem[b.idx()]);
                            }
                            Some(q) => {
                                let qval = self.line(s, q, b).1;
                                copies.push((self.mem_loc(b), CopySrc::Loc(self.cache_loc(q, b))));
                                next.mem[b.idx()] = qval;
                                self.line_mut(&mut next, q, b).0 = GLine::S;
                                copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                                *self.line_mut(&mut next, p, b) = (GLine::S, qval);
                            }
                            None => {
                                copies.push((self.cache_loc(p, b), CopySrc::Loc(self.mem_loc(b))));
                                *self.line_mut(&mut next, p, b) = (GLine::S, s.mem[b.idx()]);
                            }
                        }
                        out.push(Transition {
                            action: Action::Internal("BusRd", self.cache_loc(p, b)),
                            next,
                            tracking: Tracking::copies(copies),
                        });
                    }
                }
            }
        }
        if cfg.atomic_mem {
            // Atomic operations directly on uncached blocks' memory words.
            for b in cfg.params.blocks() {
                if !self.uncached(s, b) {
                    continue;
                }
                for p in cfg.params.procs() {
                    out.push(Transition {
                        action: Action::Mem(Op::load(p, b, s.mem[b.idx()])),
                        next: s.clone(),
                        tracking: Tracking::mem(self.mem_loc(b)),
                    });
                    for v in cfg.params.values() {
                        let mut next = s.clone();
                        next.mem[b.idx()] = v;
                        out.push(Transition {
                            action: Action::Mem(Op::store(p, b, v)),
                            next,
                            tracking: Tracking::mem(self.mem_loc(b)),
                        });
                    }
                }
            }
        }
        out
    }
}

impl Symmetry for GenProtocol {
    fn symmetry_dims(&self) -> SymDims {
        if self.cfg.mutation == Some(Mutation::DroppedInvalidation) {
            // The dropped invalidation spares the *highest-numbered*
            // sharer, so processor renaming is not equivariant.
            SymDims {
                procs: false,
                blocks: true,
                values: true,
            }
        } else {
            SymDims::FULL
        }
    }

    fn permute_state(&self, s: &Self::State, perm: &SymPerm) -> Self::State {
        let pr = self.cfg.params;
        let (p, b) = (pr.p as usize, pr.b as usize);
        let mut lines = s.lines.clone();
        for pi in 0..p {
            for bi in 0..b {
                let (l, v) = s.lines[pi * b + bi];
                lines[perm.proc_idx(pi) * b + perm.block_idx(bi)] = (l, perm.value(v));
            }
        }
        let mut mem = s.mem.clone();
        for (bi, &v) in s.mem.iter().enumerate() {
            mem[perm.block_idx(bi)] = perm.value(v);
        }
        GenState { lines, mem }
    }

    fn permute_loc(&self, loc: LocId, perm: &SymPerm) -> LocId {
        let pr = self.cfg.params;
        let (p, b) = (pr.p as u32, pr.b as u32);
        let i = loc - 1;
        if i < p * b {
            let (pi, bi) = (i / b, i % b);
            perm.proc_idx(pi as usize) as u32 * b + perm.block_idx(bi as usize) as u32 + 1
        } else {
            let bi = i - p * b;
            p * b + perm.block_idx(bi as usize) as u32 + 1
        }
    }

    fn encode_state(&self, s: &Self::State, out: &mut Vec<u64>) {
        out.extend(s.lines.iter().map(|&(l, v)| {
            let l = match l {
                GLine::M => 0u64,
                GLine::S => 1,
                GLine::I => 2,
            };
            l << 8 | v.0 as u64
        }));
        out.extend(s.mem.iter().map(|v| v.0 as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_graph::has_serial_reordering;
    use scv_protocol::{litmus, realization, Runner};

    fn all_features(mutation: Option<Mutation>, params: Params) -> GenConfig {
        GenConfig {
            params,
            shared: true,
            upgrade: true,
            evict_m: true,
            evict_s: true,
            downgrade: true,
            atomic_mem: true,
            mutation,
        }
    }

    #[test]
    fn config_line_roundtrips() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let cfg = GenConfig::sample(&mut rng);
            assert_eq!(GenConfig::from_line(&cfg.to_line()), Some(cfg));
            let cfg = GenConfig::sample_mutated(&mut rng);
            assert_eq!(GenConfig::from_line(&cfg.to_line()), Some(cfg));
        }
        assert_eq!(GenConfig::from_line("p=2 b=1"), None);
        assert_eq!(GenConfig::from_line("garbage"), None);
    }

    #[test]
    fn unmutated_random_runs_are_sc() {
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..25 {
            let cfg = GenConfig::sample(&mut rng);
            let mut r = Runner::new(GenProtocol::new(cfg));
            r.run_random(36, 0.5, &mut rng);
            let t = r.run().trace();
            assert!(
                has_serial_reordering(&t),
                "case {i} ({cfg}): non-SC trace {t}"
            );
        }
    }

    #[test]
    fn unmutated_coherence_invariants_hold() {
        // At most one owner; M excludes S; S copies equal memory.
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = all_features(None, Params::new(3, 2, 2));
        let proto = GenProtocol::new(cfg);
        let mut r = Runner::new(proto.clone());
        for _ in 0..300 {
            if !r.step_random(&mut rng) {
                break;
            }
            let s = r.state();
            for b in cfg.params.blocks() {
                let owners = cfg
                    .params
                    .procs()
                    .filter(|&p| proto.line(s, p, b).0 == GLine::M)
                    .count();
                let sharers: Vec<_> = cfg
                    .params
                    .procs()
                    .filter(|&p| proto.line(s, p, b).0 == GLine::S)
                    .collect();
                assert!(owners <= 1);
                assert!(owners == 0 || sharers.is_empty(), "M coexists with S");
                for &p in &sharers {
                    assert_eq!(
                        proto.line(s, p, b).1,
                        s.mem[b.idx()],
                        "S copy diverged from memory"
                    );
                }
            }
        }
    }

    #[test]
    fn every_mutation_realizes_message_passing() {
        for m in Mutation::ALL {
            let mut rng = SmallRng::seed_from_u64(4);
            let cfg = GenConfig {
                mutation: Some(m),
                ..GenConfig::sample_mutated(&mut rng)
            };
            let mp = litmus::message_passing();
            let run = realization(&GenProtocol::new(cfg), &mp.trace, 8)
                .unwrap_or_else(|| panic!("{} must realize MP", m.tag()));
            assert_eq!(run.trace(), mp.trace);
            assert!(!has_serial_reordering(&run.trace()));
        }
    }

    #[test]
    fn unmutated_family_realizes_no_forbidden_litmus() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10 {
            let cfg = GenConfig::sample(&mut rng);
            for l in litmus::all() {
                if l.sc_allows || !l.trace.in_bounds(&cfg.params) {
                    continue;
                }
                assert!(
                    !litmus::realizable(&GenProtocol::new(cfg), &l.trace, 6),
                    "{cfg} realized forbidden {}",
                    l.name
                );
            }
        }
    }

    /// Equivariance spot check: for states along a random walk and every
    /// group element, successors commute with renaming (compared as sets
    /// of renamed (action, tracking, encoded next state)).
    #[test]
    fn declared_symmetry_is_equivariant() {
        use std::collections::BTreeSet;
        let rename =
            |proto: &GenProtocol, t: &Transition<GenState>, perm: &SymPerm| -> (String, Vec<u64>) {
                let action = match t.action {
                    Action::Mem(op) => format!("{}", perm.op(op)),
                    Action::Internal(name, loc) => {
                        format!("{name}({})", proto.permute_loc(loc, perm))
                    }
                };
                let mut tr = vec![t.tracking.loc.map_or(0, |l| proto.permute_loc(l, perm)) as u64];
                for &(dst, src) in &t.tracking.copies {
                    tr.push(proto.permute_loc(dst, perm) as u64);
                    tr.push(match src {
                        CopySrc::Loc(l) => proto.permute_loc(l, perm) as u64,
                        CopySrc::Invalid => u64::MAX,
                    });
                }
                let mut enc = Vec::new();
                proto.encode_state(&proto.permute_state(&t.next, perm), &mut enc);
                tr.extend(enc);
                (action, tr)
            };
        let mut rng = SmallRng::seed_from_u64(6);
        for mutation in [None, Some(Mutation::StaleRead), Some(Mutation::RacyStore)] {
            let cfg = all_features(mutation, Params::new(2, 2, 2));
            let proto = GenProtocol::new(cfg);
            let group = SymPerm::group(cfg.params, proto.symmetry_dims(), 1024);
            let mut r = Runner::new(proto.clone());
            for _ in 0..40 {
                let s = r.state().clone();
                for g in &group {
                    let lhs: BTreeSet<_> = proto
                        .transitions(&s)
                        .iter()
                        .map(|t| rename(&proto, t, g))
                        .collect();
                    let id = SymPerm::identity(cfg.params);
                    let rhs: BTreeSet<_> = proto
                        .transitions(&proto.permute_state(&s, g))
                        .iter()
                        .map(|t| rename(&proto, t, &id))
                        .collect();
                    assert_eq!(lhs, rhs, "not equivariant under {g:?}");
                }
                if !r.step_random(&mut rng) {
                    break;
                }
            }
        }
    }

    #[test]
    fn dropped_invalidation_excludes_proc_symmetry() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut cfg = GenConfig::sample_mutated(&mut rng);
        cfg.mutation = Some(Mutation::DroppedInvalidation);
        let dims = GenProtocol::new(cfg).symmetry_dims();
        assert!(!dims.procs);
        assert!(dims.blocks && dims.values);
    }
}
