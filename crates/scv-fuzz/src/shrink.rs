//! Counterexample shrinking by delta debugging.
//!
//! A fuzz disagreement arrives as a run of tens of actions; most of them
//! are irrelevant. [`ddmin`] reduces the action sequence to a locally
//! minimal subsequence that (a) still *replays* — every action is enabled
//! in order from the initial state — and (b) still satisfies the caller's
//! failure predicate. Replay is unambiguous for the generated family:
//! within one state, no two enabled transitions carry the same action.

use scv_protocol::{Action, Protocol, Run, Runner};

/// Replay an action sequence from the initial state, taking at each step
/// the enabled transition whose action matches exactly. Returns `None` if
/// some action is not enabled when its turn comes.
pub fn replay<P: Protocol + Clone>(protocol: &P, actions: &[Action]) -> Option<Run> {
    let mut r = Runner::new(protocol.clone());
    for a in actions {
        let t = r.enabled().into_iter().find(|t| t.action == *a)?;
        r.take(t);
    }
    Some(r.into_run())
}

/// Delta-debug `actions` down to a locally minimal subsequence whose
/// replayed run still satisfies `failing`. The input must itself replay
/// and fail; the result is 1-minimal (no single action can be dropped).
pub fn ddmin<P, F>(protocol: &P, actions: &[Action], failing: F) -> Vec<Action>
where
    P: Protocol + Clone,
    F: Fn(&Run) -> bool,
{
    debug_assert!(replay(protocol, actions).is_some_and(|r| failing(&r)));
    let still_fails = |cand: &[Action]| replay(protocol, cand).is_some_and(|r| failing(&r));
    let mut cur = actions.to_vec();
    let mut granularity = 2usize;
    'outer: while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(granularity);
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let cand: Vec<Action> = cur[..start].iter().chain(&cur[end..]).copied().collect();
            if still_fails(&cand) {
                cur = cand;
                granularity = granularity.saturating_sub(1).max(2);
                continue 'outer;
            }
            start = end;
        }
        if granularity >= cur.len() {
            break;
        }
        granularity = (granularity * 2).min(cur.len());
    }
    // Polish until a fixed point: one-at-a-time elimination, then
    // pair elimination. Correlated actions (e.g. a BusRd fill and the
    // EvictS that undoes it) are each required by the other, so neither
    // can be dropped singly — only removing the pair makes progress.
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if still_fails(&cand) {
                cur = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
        'pairs: for i in 0..cur.len() {
            for j in (i + 1)..cur.len() {
                let mut cand = cur.clone();
                cand.remove(j);
                cand.remove(i);
                if still_fails(&cand) {
                    cur = cand;
                    changed = true;
                    break 'pairs;
                }
            }
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, GenProtocol, Mutation};
    use crate::oracle::drive;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_protocol::{litmus, realization};

    fn stale_read() -> GenProtocol {
        let mut rng = SmallRng::seed_from_u64(0);
        GenProtocol::new(GenConfig {
            mutation: Some(Mutation::StaleRead),
            ..GenConfig::sample_mutated(&mut rng)
        })
    }

    #[test]
    fn replay_reproduces_a_run_and_rejects_garbage() {
        let proto = stale_read();
        let run = realization(&proto, &litmus::message_passing().trace, 8).unwrap();
        let actions: Vec<Action> = run.steps.iter().map(|s| s.action).collect();
        assert_eq!(replay(&proto, &actions).unwrap(), run);
        // Reversing breaks enabledness (a load of value 1 cannot come
        // before any store).
        let reversed: Vec<Action> = actions.iter().rev().copied().collect();
        assert!(replay(&proto, &reversed).is_none());
    }

    #[test]
    fn ddmin_reduces_a_padded_violation_to_its_core() {
        let proto = stale_read();
        let run = realization(&proto, &litmus::message_passing().trace, 8).unwrap();
        let mut actions: Vec<Action> = run.steps.iter().map(|s| s.action).collect();
        // Pad with 20 more random steps; the rejection persists.
        let mut rng = SmallRng::seed_from_u64(21);
        let mut r = Runner::new(proto.clone());
        for a in &actions {
            let t = r.enabled().into_iter().find(|t| t.action == *a).unwrap();
            r.take(t);
        }
        r.run_random(20, 0.5, &mut rng);
        actions = r.run().steps.iter().map(|s| s.action).collect();
        assert!(actions.len() > run.len());
        let rejects = |run: &Run| !drive(&proto, run).accepted();
        assert!(rejects(r.run()));
        let min = ddmin(&proto, &actions, rejects);
        assert!(min.len() <= 10, "shrunk to {} actions: {min:?}", min.len());
        let min_run = replay(&proto, &min).unwrap();
        assert!(rejects(&min_run), "shrunk run still rejected");
        // 1-minimality: dropping any single action loses the failure.
        for i in 0..min.len() {
            let mut cand = min.clone();
            cand.remove(i);
            assert!(
                !replay(&proto, &cand).is_some_and(|r| rejects(&r)),
                "action {i} was removable"
            );
        }
    }
}
