//! The fuzzing campaign driver.
//!
//! [`run_fuzz`] executes a seeded, budgeted campaign: each case samples a
//! protocol from the generated family (mutated with probability
//! [`FuzzOptions::mutated_ratio`]), drives seeded random runs through the
//! trace-level oracle stack, hunts every injected bug through directed
//! litmus realization, and periodically cross-checks the model-checking
//! verdict matrix. Disagreements are shrunk to minimal reproducers and
//! (optionally) serialized into the regression corpus.
//!
//! [`fault_injection_self_test`] validates the pipeline itself: it
//! manufactures a synthetic disagreement on a known-bad run, then checks
//! that shrinking produces a ≤ 10-action reproducer that survives a
//! corpus serialize → parse → replay round-trip.

use crate::corpus::{CorpusCase, Expectation};
use crate::gen::{GenConfig, GenProtocol, Mutation};
use crate::oracle::{check_run, drive, mc_matrix, Disagreement};
use crate::shrink::{ddmin, replay};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scv_protocol::{litmus, realization, Action, Run, Runner};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Campaign options.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Master seed; every case derives its own rng from it.
    pub seed: u64,
    /// Number of cases to attempt.
    pub cases: usize,
    /// Wall-clock budget; checked between cases.
    pub budget: Option<Duration>,
    /// Probability that a case uses a mutation-injected protocol.
    pub mutated_ratio: f64,
    /// Random runs per case fed to the trace-level oracles.
    pub runs_per_case: usize,
    /// Steps per random run.
    pub run_len: usize,
    /// Run the model-checking matrix every `mc_every` cases (0 = never).
    pub mc_every: usize,
    /// Per-combination state cap for the matrix.
    pub mc_states: usize,
    /// Where to write shrunk reproducers (`None` = don't write).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            cases: 50,
            budget: None,
            mutated_ratio: 0.4,
            runs_per_case: 3,
            run_len: 36,
            mc_every: 10,
            mc_states: 400_000,
            corpus_dir: None,
        }
    }
}

/// A disagreement found by the campaign, with its shrunk reproducer.
#[derive(Clone, Debug)]
pub struct FoundDisagreement {
    /// Case index within the campaign.
    pub case: usize,
    /// The sampled configuration.
    pub config: GenConfig,
    /// The oracle split.
    pub disagreement: Disagreement,
    /// Shrunk reproducer (when the disagreement came with a run).
    pub shrunk: Option<CorpusCase>,
}

/// Campaign summary.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Cases on guaranteed-SC configurations.
    pub sc_cases: usize,
    /// Cases on mutation-injected configurations.
    pub mutated_cases: usize,
    /// Mutated cases whose injected bug was flagged (realized litmus
    /// violation rejected by the streaming checker).
    pub bugs_flagged: usize,
    /// Random runs pushed through the trace-level stack.
    pub runs_checked: usize,
    /// Model-checking matrix invocations.
    pub mc_runs: usize,
    /// Matrix combinations that hit their state cap.
    pub mc_bounded: usize,
    /// Oracle disagreements (each shrunk where possible).
    pub disagreements: Vec<FoundDisagreement>,
    /// The wall-clock budget expired before all cases ran.
    pub budget_exhausted: bool,
}

impl FuzzReport {
    /// Campaign verdict: no disagreements and every injected bug flagged.
    pub fn ok(&self) -> bool {
        self.disagreements.is_empty() && self.bugs_flagged == self.mutated_cases
    }
}

/// The forbidden litmus outcomes used for directed bug hunting, smallest
/// first (all fit the clamped mutated parameters).
fn hunt_traces() -> Vec<litmus::Litmus> {
    litmus::all().into_iter().filter(|l| !l.sc_allows).collect()
}

fn case_rng(seed: u64, case: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Shrink a disagreement's run to a minimal reproducer that preserves
/// "the differential stack still disagrees", and package it as a corpus
/// case pinned to the ground-truth verdict of the shrunk run.
fn shrink_disagreement(
    proto: &GenProtocol,
    d: &Disagreement,
    guaranteed_sc: bool,
    name: String,
    note: String,
) -> Option<CorpusCase> {
    if d.actions.is_empty() {
        return None;
    }
    let disagrees = |run: &Run| check_run(proto, run, guaranteed_sc).is_err();
    let full = replay(proto, &d.actions)?;
    if !disagrees(&full) {
        return None;
    }
    let min = ddmin(proto, &d.actions, disagrees);
    let run = replay(proto, &min)?;
    let expect = if drive(proto, &run).accepted() {
        Expectation::Accept
    } else {
        Expectation::Reject
    };
    Some(CorpusCase {
        name,
        config: *proto.config(),
        expect,
        note,
        actions: min,
    })
}

fn record_disagreement(
    report: &mut FuzzReport,
    opts: &FuzzOptions,
    case: usize,
    cfg: GenConfig,
    d: Disagreement,
) {
    let proto = GenProtocol::new(cfg);
    let shrunk = shrink_disagreement(
        &proto,
        &d,
        cfg.mutation.is_none(),
        format!("disagree-{}-case{case}", d.kind),
        format!("seed {} case {case}: {}", opts.seed, d.detail),
    );
    if let (Some(case_file), Some(dir)) = (&shrunk, &opts.corpus_dir) {
        let _ = case_file.save(dir);
    }
    if scv_telemetry::enabled() {
        scv_telemetry::emit_report(
            scv_telemetry::RunReport::new(format!("fuzz/disagreement/{}", d.kind))
                .param("config", cfg.to_line())
                .param("case", case)
                .metric(
                    "shrunk_len",
                    shrunk.as_ref().map_or(-1.0, |c| c.actions.len() as f64),
                )
                .with_verdict(d.detail.clone()),
        );
    }
    report.disagreements.push(FoundDisagreement {
        case,
        config: cfg,
        disagreement: d,
        shrunk,
    });
}

/// Run one fuzz case on a guaranteed-SC configuration.
fn sc_case(report: &mut FuzzReport, opts: &FuzzOptions, case: usize, rng: &mut SmallRng) {
    let cfg = GenConfig::sample(rng);
    report.sc_cases += 1;
    for _ in 0..opts.runs_per_case {
        let mut r = Runner::new(GenProtocol::new(cfg));
        r.run_random(opts.run_len, 0.5, rng);
        report.runs_checked += 1;
        if let Err(d) = check_run(r.protocol(), r.run(), true) {
            record_disagreement(report, opts, case, cfg, d);
        }
    }
    if opts.mc_every > 0 && case.is_multiple_of(opts.mc_every) {
        report.mc_runs += 1;
        match mc_matrix(&cfg, false, 2, opts.mc_states.min(60_000), rng) {
            Ok(check) => report.mc_bounded += check.any_bounded as usize,
            Err(d) => record_disagreement(report, opts, case, cfg, d),
        }
    }
}

/// Run one fuzz case on a mutation-injected configuration.
fn mutated_case(report: &mut FuzzReport, opts: &FuzzOptions, case: usize, rng: &mut SmallRng) {
    let cfg = GenConfig::sample_mutated(rng);
    report.mutated_cases += 1;
    let proto = GenProtocol::new(cfg);
    // Directed hunt: some forbidden litmus outcome must be realizable, and
    // the realized run must be rejected by the streaming checker (both are
    // cross-checked against the whole stack by check_run).
    let mut flagged = false;
    for l in hunt_traces() {
        if !l.trace.in_bounds(&cfg.params) {
            continue;
        }
        if let Some(run) = realization(&proto, &l.trace, 8) {
            match check_run(&proto, &run, false) {
                Ok(v) if !v.accepted => flagged = true,
                Ok(_) => {
                    // Accepted a realization of a forbidden outcome —
                    // check_run only lets this through if the trace were
                    // SC, which a forbidden litmus never is.
                    unreachable!("forbidden litmus accepted as SC");
                }
                Err(d) => record_disagreement(report, opts, case, cfg, d),
            }
            break;
        }
    }
    if flagged {
        report.bugs_flagged += 1;
    } else {
        record_disagreement(
            report,
            opts,
            case,
            cfg,
            Disagreement {
                kind: "unflagged-mutation",
                detail: format!("no forbidden litmus realizable on {cfg}"),
                actions: Vec::new(),
            },
        );
    }
    // Undirected runs through the stack (mutation bugs may or may not
    // fire; the oracles must agree either way).
    for _ in 0..opts.runs_per_case {
        let mut r = Runner::new(proto.clone());
        r.run_random(opts.run_len, 0.5, rng);
        report.runs_checked += 1;
        if let Err(d) = check_run(r.protocol(), r.run(), false) {
            record_disagreement(report, opts, case, cfg, d);
        }
    }
    if opts.mc_every > 0 && case.is_multiple_of(opts.mc_every) {
        report.mc_runs += 1;
        match mc_matrix(&cfg, true, 1, opts.mc_states, rng) {
            Ok(check) => report.mc_bounded += check.any_bounded as usize,
            Err(d) => record_disagreement(report, opts, case, cfg, d),
        }
    }
}

/// Execute a fuzzing campaign.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let start = Instant::now();
    let mut report = FuzzReport::default();
    for case in 0..opts.cases {
        if let Some(budget) = opts.budget {
            if start.elapsed() >= budget {
                report.budget_exhausted = true;
                break;
            }
        }
        let mut rng = case_rng(opts.seed, case);
        let before = report.disagreements.len();
        let mutated = rng.gen_bool(opts.mutated_ratio);
        if mutated {
            mutated_case(&mut report, opts, case, &mut rng);
        } else {
            sc_case(&mut report, opts, case, &mut rng);
        }
        report.cases += 1;
        if scv_telemetry::enabled() {
            scv_telemetry::emit_report(
                scv_telemetry::RunReport::new(format!("fuzz/case-{case}"))
                    .param("seed", opts.seed)
                    .param("mutated", mutated)
                    .metric("runs", opts.runs_per_case as f64)
                    .metric(
                        "disagreements",
                        (report.disagreements.len() - before) as f64,
                    )
                    .with_verdict(if report.disagreements.len() == before {
                        "ok"
                    } else {
                        "disagree"
                    }),
            );
        }
    }
    if scv_telemetry::enabled() {
        scv_telemetry::emit_report(
            scv_telemetry::RunReport::new("fuzz/summary")
                .param("seed", opts.seed)
                .param("budget_exhausted", report.budget_exhausted)
                .metric("cases", report.cases as f64)
                .metric("sc_cases", report.sc_cases as f64)
                .metric("mutated_cases", report.mutated_cases as f64)
                .metric("bugs_flagged", report.bugs_flagged as f64)
                .metric("runs_checked", report.runs_checked as f64)
                .metric("mc_runs", report.mc_runs as f64)
                .metric("mc_bounded", report.mc_bounded as f64)
                .metric("disagreements", report.disagreements.len() as f64)
                .with_verdict(if report.ok() { "ok" } else { "FAIL" }),
        );
    }
    report
}

/// Self-test of the disagreement pipeline by fault injection: pretend the
/// streaming checker's rejection of a known-bad run is an oracle
/// disagreement, and require that shrinking + corpus serialization works
/// end to end. Returns the shrunk case; errors describe which stage broke.
pub fn fault_injection_self_test(seed: u64) -> Result<CorpusCase, String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cfg = GenConfig {
        mutation: Some(Mutation::StaleRead),
        ..GenConfig::sample_mutated(&mut rng)
    };
    let proto = GenProtocol::new(cfg);
    let core = realization(&proto, &litmus::message_passing().trace, 8)
        .ok_or("stale-read protocol failed to realize MP")?;
    // Bury the violation in noise: replay the core then walk randomly.
    let mut r = Runner::new(proto.clone());
    for s in &core.steps {
        let t = r
            .enabled()
            .into_iter()
            .find(|t| t.action == s.action)
            .ok_or("core run stopped replaying")?;
        r.take(t);
    }
    r.run_random(20, 0.5, &mut rng);
    let noisy: Vec<Action> = r.run().steps.iter().map(|s| s.action).collect();
    // Injected fault: treat "checker rejects" as the disagreement signal.
    let fails = |run: &Run| !drive(&proto, run).accepted();
    if !fails(r.run()) {
        return Err("noisy run unexpectedly accepted".into());
    }
    let min = ddmin(&proto, &noisy, fails);
    if min.len() > 10 {
        return Err(format!(
            "shrunk reproducer has {} actions (want ≤ 10)",
            min.len()
        ));
    }
    let case = CorpusCase {
        name: "self-test-stale-read".into(),
        config: cfg,
        expect: Expectation::Reject,
        note: format!("fault-injection self-test, seed {seed}"),
        actions: min,
    };
    // The reproducer must survive serialize → parse → replay.
    let parsed = CorpusCase::parse(&case.serialize()).map_err(|e| format!("parse: {e}"))?;
    if parsed != case {
        return Err("serialize/parse round-trip changed the case".into());
    }
    parsed.replay_check().map_err(|e| format!("replay: {e}"))?;
    Ok(case)
}

/// The deterministic reference corpus committed under
/// `tests/corpus/fuzz`: one shrunk message-passing reproducer per
/// mutation operator, one accepting SC random walk, and the
/// fault-injection self-test reproducer. Regenerate the committed files
/// with `SCV_WRITE_CORPUS=1 cargo test --test fuzz_corpus`.
pub fn reference_corpus() -> Vec<CorpusCase> {
    let mut out = Vec::new();
    for m in Mutation::ALL {
        let cfg = GenConfig {
            mutation: Some(m),
            ..GenConfig::sample_mutated(&mut SmallRng::seed_from_u64(0))
        };
        let proto = GenProtocol::new(cfg);
        let run = realization(&proto, &litmus::message_passing().trace, 8)
            .expect("every mutation realizes MP");
        let actions: Vec<Action> = run.steps.iter().map(|s| s.action).collect();
        let rejects = |r: &Run| !drive(&proto, r).accepted();
        let min = ddmin(&proto, &actions, rejects);
        out.push(CorpusCase {
            name: format!("mp-{}", m.tag()),
            config: cfg,
            expect: Expectation::Reject,
            note: "shrunk message-passing reproducer".into(),
            actions: min,
        });
    }
    let cfg = GenConfig::sample(&mut SmallRng::seed_from_u64(1));
    let mut r = Runner::new(GenProtocol::new(cfg));
    r.run_random(24, 0.5, &mut SmallRng::seed_from_u64(2));
    out.push(CorpusCase {
        name: "sc-random-walk".into(),
        config: cfg,
        expect: Expectation::Accept,
        note: "random walk on an SC-by-construction configuration".into(),
        actions: r.run().steps.iter().map(|s| s.action).collect(),
    });
    out.push(fault_injection_self_test(42).expect("self-test reproducer"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_flags_all_bugs() {
        let opts = FuzzOptions {
            seed: 42,
            cases: 8,
            mc_every: 0, // matrix covered by oracle tests; keep this fast
            runs_per_case: 2,
            ..FuzzOptions::default()
        };
        let report = run_fuzz(&opts);
        assert_eq!(report.cases, 8);
        assert!(report.sc_cases + report.mutated_cases == 8);
        assert!(
            report.disagreements.is_empty(),
            "disagreements: {:?}",
            report
                .disagreements
                .iter()
                .map(|d| d.disagreement.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(report.bugs_flagged, report.mutated_cases);
        assert!(report.ok());
    }

    #[test]
    fn budget_cuts_a_campaign_short() {
        let opts = FuzzOptions {
            seed: 7,
            cases: 10_000,
            budget: Some(Duration::from_millis(200)),
            mc_every: 0,
            ..FuzzOptions::default()
        };
        let report = run_fuzz(&opts);
        assert!(report.budget_exhausted);
        assert!(report.cases < 10_000);
    }

    #[test]
    fn self_test_shrinks_and_roundtrips() {
        let case = fault_injection_self_test(42).unwrap_or_else(|e| panic!("{e}"));
        assert!(case.actions.len() <= 10);
        assert!(case.replay_check().is_ok());
    }

    #[test]
    fn campaigns_are_deterministic_in_the_seed() {
        let opts = FuzzOptions {
            seed: 5,
            cases: 6,
            mc_every: 0,
            runs_per_case: 1,
            ..FuzzOptions::default()
        };
        let a = run_fuzz(&opts);
        let b = run_fuzz(&opts);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.sc_cases, b.sc_cases);
        assert_eq!(a.runs_checked, b.runs_checked);
        assert_eq!(a.bugs_flagged, b.bugs_flagged);
    }
}
