//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! plain timing harness exposing the criterion API shape its benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`measurement_time`/`warm_up_time`/`throughput`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`). No statistics
//! beyond min/median/mean, no plots, no saved baselines — each benchmark
//! prints one line:
//!
//! ```text
//! group/name/param        min 1.234ms  median 1.301ms  mean 1.312ms  (12 samples)
//! ```

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration declaration; only echoed in output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter (used by criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure given to [`Bencher::iter`]-style calls.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, collecting up to the configured number of samples within
    /// the measurement-time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for warm-up iterations.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declare per-iteration work (echoed as a rate in the output).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            times: Vec::new(),
        };
        f(&mut b);
        self.report(&id, &b.times);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&self, id: &BenchmarkId, times: &[Duration]) {
        if times.is_empty() {
            println!("{}/{}        (no samples)", self.name, id.id);
            return;
        }
        let mut sorted: Vec<Duration> = times.to_vec();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  {:.0} elem/s", per_sec)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  {:.0} B/s", per_sec)
            }
            None => String::new(),
        };
        println!(
            "{}/{}        min {}  median {}  mean {}  ({} samples){rate}",
            self.name,
            id.id,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len(),
        );
    }

    /// End the group (parity with criterion; prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declare a group function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running each group (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0usize;
        g.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| runs += 1);
        });
        g.finish();
        assert!(runs >= 3, "closure must actually run, got {runs}");
    }
}
