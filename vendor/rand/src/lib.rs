//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the *minimal* API surface it actually uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable generator
//!   (xoshiro256++, seeded through SplitMix64 like the real `SmallRng`);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer `Range`/`RangeInclusive`,
//!   [`Rng::gen_bool`];
//! * [`seq::SliceRandom::choose`].
//!
//! Everything is deterministic given the seed. Statistical quality matches
//! xoshiro256++ (the real `SmallRng`'s algorithm on 64-bit targets);
//! range sampling uses Lemire-style widening multiply instead of
//! rejection, which introduces a bias below 2⁻⁶⁴ — irrelevant for
//! workload generation and property tests, and value-stable across runs.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let x = rng.next_u64() as u128;
                self.start.wrapping_add(((x * span) >> 64) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's-complement offset arithmetic: the unsigned span is
                // exact, and wrapping the sampled offset back onto `start`
                // is correct for any signed bounds.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let x = rng.next_u64() as u128;
                self.start.wrapping_add(((x * span) >> 64) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u128) + 1;
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real `SmallRng` on 64-bit
    /// platforms: fast, small state, excellent statistical quality (not
    /// cryptographic).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u8..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(3);
        let items = [10, 20, 30];
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
