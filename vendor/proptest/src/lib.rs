//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small, deterministic property-testing engine with the API surface its
//! tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` bindings;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`];
//! * [`Strategy`](strategy::Strategy) implemented for integer ranges and
//!   tuples, with `prop_map`;
//! * [`option::of`] and [`collection::vec`].
//!
//! Differences from real proptest, deliberately accepted: cases are
//! generated from a **fixed seed derived from the test name** (fully
//! deterministic across runs and machines — the repo's test battery
//! depends on reproducible searches), and there is **no shrinking** (a
//! failure reports the reproducing seed and the exact generated inputs
//! instead). The case body runs under `catch_unwind`, so a direct panic
//! inside it — an `unwrap`, an out-of-bounds index — gets the same
//! seed-and-inputs report as a `prop_assert!` failure.

pub mod strategy {
    /// The RNG handed to strategies (deterministic, seeded per test case).
    pub type TestRng = rand::rngs::SmallRng;

    /// A recipe for generating values of type `Value`.
    ///
    /// Object-safe: `generate` takes the concrete [`TestRng`], and the
    /// combinator methods are `Self: Sized`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (see [`prop_oneof!`](crate::prop_oneof)).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Build from the arm list; panics if empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            use rand::Rng;
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// A strategy that always yields a clone of one value.
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }
}

pub mod option {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`: `None` one time in four.
    pub struct OptionOf<S> {
        inner: S,
    }

    /// `Some` from the inner strategy 3/4 of the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionOf<S> {
        OptionOf { inner }
    }

    impl<S: Strategy> Strategy for OptionOf<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        inner: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `inner` and whose length
    /// is uniform in `size`.
    pub fn vec<S: Strategy>(inner: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            inner,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.inner.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    pub use crate::strategy::TestRng;

    /// Per-test configuration (only the knob this workspace uses).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build from a formatted message.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Extract a human-readable message from a caught panic payload
    /// (`panic!` with a literal yields `&str`, with formatting a `String`).
    pub fn panic_message(payload: &(dyn core::any::Any + Send)) -> &str {
        if let Some(s) = payload.downcast_ref::<&str>() {
            s
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.as_str()
        } else {
            "<non-string panic payload>"
        }
    }

    /// FNV-1a of the test name: the per-test base seed. Deterministic
    /// across runs, processes, and platforms.
    pub fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// The usual glob import, mirroring real proptest.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, ys in proptest::collection::vec(0u8..4, 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __base = $crate::test_runner::name_seed(stringify!($name));
                // Bind each strategy to its argument name, then shadow the
                // name with a generated value inside the loop.
                $(let $arg = $strat;)+
                for __case in 0..__cfg.cases {
                    let __seed = __base ^ (__case as u64).wrapping_mul(0x9E3779B97F4A7C15);
                    let mut __rng =
                        <$crate::strategy::TestRng as rand::SeedableRng>::seed_from_u64(__seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                    let __inputs = ::std::format!("{:#?}", ($(&$arg,)+));
                    // Run the body under catch_unwind so that even a direct
                    // panic (an `unwrap`, an out-of-bounds index) — not just
                    // a prop_assert! — reports which seed reproduces it.
                    // (allow: a body that ends by diverging makes Ok(())
                    // unreachable, which is fine.)
                    #[allow(unreachable_code)]
                    let __run =
                        || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        };
                    let __result =
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                    match __result {
                        ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                        ::core::result::Result::Ok(::core::result::Result::Err(__e)) => {
                            ::std::panic!(
                                "proptest {} failed at case {}/{} (seed {:#018x}): {}\ninputs: {}",
                                stringify!($name), __case + 1, __cfg.cases, __seed, __e, __inputs,
                            );
                        }
                        ::core::result::Result::Err(__payload) => {
                            let __msg = $crate::test_runner::panic_message(&*__payload);
                            ::std::panic!(
                                "proptest {} panicked at case {}/{} (seed {:#018x}): {}\ninputs: {}",
                                stringify!($name), __case + 1, __cfg.cases, __seed, __msg, __inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a [`proptest!`] body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` == `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __a, __b, ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::OneOf::new(__arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1u8..5, ab in (0u32..10, 0u64..=3)) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(ab.0 < 10, "a was {}", ab.0);
            prop_assert!(ab.1 <= 3);
        }

        #[test]
        fn map_oneof_vec_option(
            v in crate::collection::vec(
                prop_oneof![
                    (0u8..4).prop_map(|x| x as u32),
                    (10u8..14).prop_map(|x| x as u32),
                ],
                0..20,
            ),
            o in crate::option::of(0u8..2),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 4 || (10..14).contains(&x)));
            if let Some(x) = o {
                prop_assert!(x < 2);
            }
        }
    }

    // Compiled without `#[test]` so the tests below can invoke them under
    // catch_unwind and inspect the failure report.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }

        fn always_panics(x in 0u32..10) {
            panic!("boom at {x}");
        }
    }

    #[test]
    fn prop_assert_failure_reports_the_seed() {
        let payload = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = crate::test_runner::panic_message(&*payload);
        assert!(msg.contains("failed at case"), "{msg}");
        assert!(msg.contains("seed 0x"), "{msg}");
        assert!(msg.contains("inputs:"), "{msg}");
    }

    #[test]
    fn body_panic_reports_the_seed() {
        let payload = std::panic::catch_unwind(always_panics).unwrap_err();
        let msg = crate::test_runner::panic_message(&*payload);
        assert!(msg.contains("panicked at case"), "{msg}");
        assert!(msg.contains("seed 0x"), "{msg}");
        assert!(msg.contains("boom at"), "{msg}");
        assert!(msg.contains("inputs:"), "{msg}");
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = (0u32..1000, 0u64..1000);
        let mut r1 = crate::strategy::TestRng::seed_from_u64(5);
        let mut r2 = crate::strategy::TestRng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
